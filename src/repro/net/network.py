"""The simulated network tying nodes, topology, links and the simulator together.

``Network`` owns:

* the :class:`repro.net.simulator.Simulator` (virtual clock),
* one :class:`repro.net.node.Node` per address in the topology,
* one :class:`repro.net.links.InboundLink` per node,
* a :class:`repro.net.stats.TrafficStats` accumulator.

Message delivery follows the paper's model: propagation latency given by the
topology, then serialisation/queueing at the *receiver's* inbound link, then
handler dispatch on the destination node.  Messages to dead nodes are dropped
after the propagation delay (the sender gets no error — failure detection is
the job of keep-alives one layer up, exactly as in the paper's soft-state
discussion).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.exceptions import NetworkError
from repro.net.links import InboundLink
from repro.net.message import Message
from repro.net.node import Node
from repro.net.simulator import Simulator
from repro.net.stats import TrafficStats
from repro.net.topology import Topology


class Network:
    """Message-passing fabric over a static topology."""

    def __init__(self, topology: Topology, simulator: Optional[Simulator] = None):
        self.topology = topology
        self.simulator = simulator if simulator is not None else Simulator()
        self.stats = TrafficStats()
        self.nodes: Dict[int, Node] = {
            address: Node(address, self) for address in range(topology.num_nodes)
        }
        self._links: Dict[int, InboundLink] = {
            address: InboundLink(topology.inbound_capacity(address))
            for address in range(topology.num_nodes)
        }

    # ------------------------------------------------------------- topology

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the network (live or failed)."""
        return self.topology.num_nodes

    def node(self, address: int) -> Node:
        """Return the node object at ``address``."""
        try:
            return self.nodes[address]
        except KeyError:
            raise NetworkError(f"unknown node address {address}") from None

    def live_nodes(self) -> List[Node]:
        """All nodes currently alive."""
        return [node for node in self.nodes.values() if node.alive]

    def live_addresses(self) -> List[int]:
        """Addresses of all nodes currently alive."""
        return [node.address for node in self.nodes.values() if node.alive]

    def link(self, address: int) -> InboundLink:
        """Inbound link of ``address`` (exposed for tests and metrics)."""
        return self._links[address]

    # ------------------------------------------------------------- messaging

    def send(self, message: Message) -> None:
        """Queue ``message`` for delivery according to the network model."""
        if message.dst not in self.nodes:
            raise NetworkError(f"message addressed to unknown node {message.dst}")
        if message.src not in self.nodes:
            raise NetworkError(f"message sent from unknown node {message.src}")
        self.stats.record_send(message)
        sent_at = self.simulator.now

        if message.src == message.dst:
            # Local delivery: no propagation, no link serialisation; still
            # asynchronous (zero-delay event) to preserve callback ordering.
            self.simulator.schedule(0.0, self._deliver, message, sent_at, 0.0)
            return

        latency = self.topology.latency(message.src, message.dst)
        arrival = sent_at + latency
        link = self._links[message.dst]
        delivery_time, queued_for = link.admit(arrival, message.size_bytes)
        self.simulator.schedule_at(delivery_time, self._deliver, message, sent_at, queued_for)

    def _deliver(self, message: Message, sent_at: float, queued_for: float) -> None:
        """Final delivery step executed by the simulator."""
        destination = self.nodes[message.dst]
        if not destination.alive:
            self.stats.record_drop(message)
            self._bounce(message)
            return
        self.stats.record_delivery(message, queued_for)
        destination.deliver(message)

    def _bounce(self, message: Message) -> None:
        """Notify the sender that delivery failed (models a transport timeout).

        The notification arrives one extra propagation delay after the failed
        delivery attempt and is purely local to the sender (no bytes are
        charged to the network).  Senders opt in per protocol via
        :meth:`repro.net.node.Node.register_bounce_handler`.
        """
        sender = self.nodes.get(message.src)
        if sender is None or message.src == message.dst:
            return
        delay = self.topology.latency(message.src, message.dst)
        self.simulator.schedule(delay, sender.deliver_bounce, message)

    # ------------------------------------------------------------------ run

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Advance the simulation (delegates to the simulator)."""
        return self.simulator.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: Optional[int] = None) -> float:
        """Run until no events remain."""
        return self.simulator.run_until_idle(max_events=max_events)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.simulator.now

    # --------------------------------------------------------------- failure

    def fail_node(self, address: int) -> None:
        """Mark a node as failed (messages to it will be dropped)."""
        self.node(address).fail()

    def recover_node(self, address: int) -> None:
        """Bring a failed node back up and clear its inbound backlog."""
        node = self.node(address)
        node.recover()
        self._links[address].reset(self.simulator.now)

    def fail_nodes(self, addresses: Iterable[int]) -> None:
        """Fail several nodes at once."""
        for address in addresses:
            self.fail_node(address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network(nodes={self.num_nodes}, topology={self.topology!r})"
