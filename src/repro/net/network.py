"""The simulated network tying nodes, topology, links and the simulator together.

``SimulatedNetwork`` (historically exported as ``Network``; both names refer
to the same class) is the discrete-event implementation of the
:class:`repro.net.transport.Transport` seam.  It owns:

* the :class:`repro.net.simulator.Simulator` (virtual clock),
* one :class:`repro.net.node.Node` per address in the topology,
* one :class:`repro.net.links.InboundLink` per node,
* a :class:`repro.net.stats.TrafficStats` accumulator.

Message delivery follows the paper's model: propagation latency given by the
topology, then serialisation/queueing at the *receiver's* inbound link, then
handler dispatch on the destination node.  Messages to dead nodes are dropped
after the propagation delay (the sender gets no error — failure detection is
the job of keep-alives one layer up, exactly as in the paper's soft-state
discussion).

Coalesced delivery
------------------
With ``coalesce_window_s`` set (see :meth:`Network.set_coalescing`), messages
to the same destination within the window are delivered by a single simulator
event in send order, whatever their source, with per-message link accounting
preserved (each message is admitted to the inbound link individually, so
byte counts and queueing delays match the uncoalesced path exactly).

Every coalesced group costs **one** delivery event: the first message
schedules it, and joining messages move it to the group's latest link-finish
time (never earlier than any member's own finish).  Because the group fires
once, members other than the last can be delivered later than their own
link finish — bounded by the group's remaining service time; the group's
*last* delivery matches the uncoalesced path exactly.  The window controls
who may join:

* ``0.0`` — the default when coalescing is on — merges only messages
  *arriving* at a destination at the same virtual instant, which keeps the
  slip to at most the group's service time; this is the conservative mode
  the test deployments run under.
* a positive window merges all messages to a destination whose sends fall
  within ``window`` seconds of the group's first send, so the slip can
  additionally reach the window length — the classic
  batching-for-throughput trade the 10k-node benchmark runs exploit.

``None`` (the default) disables coalescing and reproduces the
one-event-per-message seed behaviour bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.exceptions import NetworkError
from repro.net.links import InboundLink
from repro.net.message import Message
from repro.net.node import Node
from repro.net.simulator import Simulator
from repro.net.stats import TrafficStats
from repro.net.topology import Topology
from repro.net.transport import TimerService, Transport


@dataclass
class _PendingBatch:
    """Messages bound for one destination sharing one delivery event."""

    opened_at: float
    #: (message, sent_at, queued_for) per member, in send order.
    entries: List[Tuple[Message, float, float]] = field(default_factory=list)
    #: Handle of the scheduled delivery event (zero-window mode).
    handle: object = None


class SimulatedNetwork(Transport):
    """Message-passing fabric over a static topology (virtual time).

    Parameters
    ----------
    topology:
        Static latency/capacity model.
    simulator:
        Event loop to drive; a fresh one is created when omitted.
    coalesce_window_s:
        When not ``None``, messages to the same destination (from any
        source) within this many seconds are delivered by a single event
        with aggregate byte accounting.  ``0.0`` coalesces only messages
        arriving at the same virtual instant.
    """

    def __init__(self, topology: Topology, simulator: Optional[Simulator] = None,
                 coalesce_window_s: Optional[float] = None):
        self.topology = topology
        self.simulator = simulator if simulator is not None else Simulator()
        self.stats = TrafficStats()
        self.nodes: Dict[int, Node] = {
            address: Node(address, self) for address in range(topology.num_nodes)
        }
        self._links: Dict[int, InboundLink] = {
            address: InboundLink(topology.inbound_capacity(address))
            for address in range(topology.num_nodes)
        }
        self._coalesce_window: Optional[float] = None
        #: Open batches: keyed by destination in window mode, by
        #: (destination, arrival time) in zero-window mode.
        self._pending_batches: Dict[Union[int, Tuple[int, float]], _PendingBatch] = {}
        self.batches_flushed = 0
        self.messages_coalesced = 0
        self.set_coalescing(coalesce_window_s)

    # ------------------------------------------------------------ transport

    @property
    def timers(self) -> TimerService:
        """The simulator doubles as this transport's timer service."""
        return self.simulator

    # ----------------------------------------------------------- coalescing

    @property
    def coalesce_window_s(self) -> Optional[float]:
        """Current coalescing window (``None`` when coalescing is off)."""
        return self._coalesce_window

    def set_coalescing(self, window_s: Optional[float]) -> None:
        """Enable (``window_s >= 0``) or disable (``None``) coalesced delivery."""
        if window_s is not None and window_s < 0:
            raise NetworkError(f"coalescing window must be >= 0 (got {window_s})")
        self._coalesce_window = window_s

    # ------------------------------------------------------------- topology

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the network (live or failed)."""
        return self.topology.num_nodes

    def node(self, address: int) -> Node:
        """Return the node object at ``address``."""
        try:
            return self.nodes[address]
        except KeyError:
            raise NetworkError(f"unknown node address {address}") from None

    def live_nodes(self) -> List[Node]:
        """All nodes currently alive."""
        return [node for node in self.nodes.values() if node.alive]

    def live_addresses(self) -> List[int]:
        """Addresses of all nodes currently alive."""
        return [node.address for node in self.nodes.values() if node.alive]

    def link(self, address: int) -> InboundLink:
        """Inbound link of ``address`` (exposed for tests and metrics)."""
        return self._links[address]

    # ------------------------------------------------------------- messaging

    def send(self, message: Message) -> None:
        """Queue ``message`` for delivery according to the network model."""
        if message.dst not in self.nodes:
            raise NetworkError(f"message addressed to unknown node {message.dst}")
        if message.src not in self.nodes:
            raise NetworkError(f"message sent from unknown node {message.src}")
        self.stats.record_send(message)
        sent_at = self.simulator.now

        if message.src == message.dst:
            # Local delivery: no propagation, no link serialisation; still
            # asynchronous (zero-delay event) to preserve callback ordering.
            self.simulator.schedule(0.0, self._deliver, message, sent_at, 0.0)
            return

        if self._coalesce_window is not None:
            self._enqueue_coalesced(message, sent_at)
            return

        latency = self.topology.latency(message.src, message.dst)
        arrival = sent_at + latency
        link = self._links[message.dst]
        delivery_time, queued_for = link.admit(arrival, message.size_bytes)
        self.simulator.schedule_at(delivery_time, self._deliver, message, sent_at, queued_for)

    def _enqueue_coalesced(self, message: Message, sent_at: float) -> None:
        """Attach a message to an open delivery batch, or start a new one.

        Every message is admitted to the inbound link individually (identical
        byte and queueing accounting to the uncoalesced path); only the
        delivery *event* is shared.  Joining a batch cancels its scheduled
        delivery and reschedules it at the latest link-finish time seen so
        far, so no member is ever delivered before its own finish.
        """
        latency = self.topology.latency(message.src, message.dst)
        arrival = sent_at + latency
        link = self._links[message.dst]
        delivery_time, queued_for = link.admit(arrival, message.size_bytes)

        if self._coalesce_window > 0:
            # Window mode: one open batch per destination; sends within the
            # window of the batch's first send join it.
            key = message.dst
            batch = self._pending_batches.get(key)
            if batch is not None and sent_at - batch.opened_at > self._coalesce_window:
                batch = None
        else:
            # Zero window: only same-instant arrivals share an event, which
            # bounds the delivery slip of early members to the group's own
            # service time (the last member's delivery matches the seed).
            key = (message.dst, arrival)
            batch = self._pending_batches.get(key)

        if batch is None:
            batch = _PendingBatch(opened_at=sent_at)
            self._pending_batches[key] = batch
            self.batches_flushed += 1
        else:
            # The group's event only ever moves later (max over finishes),
            # which matters under infinite bandwidth where a late send from
            # a nearby source can finish before an earlier distant one.
            delivery_time = max(delivery_time, batch.handle.time)
            batch.handle.cancel()
            self.messages_coalesced += 1
        batch.entries.append((message, sent_at, queued_for))
        batch.handle = self.simulator.schedule_at(
            delivery_time, self._deliver_batch, key, batch
        )

    def _deliver_batch(self, key, batch: _PendingBatch) -> None:
        """Deliver every message of a coalesced batch in send order."""
        if self._pending_batches.get(key) is batch:
            del self._pending_batches[key]
        for message, sent_at, queued_for in batch.entries:
            self._deliver(message, sent_at, queued_for)

    def _deliver(self, message: Message, sent_at: float, queued_for: float) -> None:
        """Final delivery step executed by the simulator."""
        destination = self.nodes[message.dst]
        if not destination.alive:
            self.stats.record_drop(message)
            self._bounce(message)
            return
        self.stats.record_delivery(message, queued_for)
        destination.deliver(message)

    def _bounce(self, message: Message) -> None:
        """Notify the sender that delivery failed (models a transport timeout).

        The notification arrives one extra propagation delay after the failed
        delivery attempt and is purely local to the sender (no bytes are
        charged to the network).  Senders opt in per protocol via
        :meth:`repro.net.node.Node.register_bounce_handler`.
        """
        sender = self.nodes.get(message.src)
        if sender is None or message.src == message.dst:
            return
        delay = self.topology.latency(message.src, message.dst)
        self.simulator.schedule(delay, sender.deliver_bounce, message)

    # ------------------------------------------------------------------ run

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Advance the simulation (delegates to the simulator)."""
        return self.simulator.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: Optional[int] = None) -> float:
        """Run until no events remain."""
        return self.simulator.run_until_idle(max_events=max_events)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.simulator.now

    # --------------------------------------------------------------- failure

    def fail_node(self, address: int) -> None:
        """Mark a node as failed (messages to it will be dropped)."""
        self.node(address).fail()

    def recover_node(self, address: int) -> None:
        """Bring a failed node back up and clear its inbound backlog."""
        node = self.node(address)
        node.recover()
        self._links[address].reset(self.simulator.now)

    def fail_nodes(self, addresses: Iterable[int]) -> None:
        """Fail several nodes at once."""
        for address in addresses:
            self.fail_node(address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedNetwork(nodes={self.num_nodes}, topology={self.topology!r})"


#: Historical name; the whole simulation stack was written against it.
Network = SimulatedNetwork
