"""msgpack wire format for the real transport.

Every frame the asyncio transport ships — node-to-node messages, bootstrap
membership, client gateway RPCs — is one msgpack-encoded value behind a
4-byte big-endian length prefix.  The encoder/decoder here is a
self-contained, spec-compliant msgpack implementation (the container image
carries no ``msgpack`` wheel, and the format is small enough that carrying
our own keeps the real backend dependency-free); when the C ``msgpack``
package *is* importable the unit tests cross-validate against it.

Application extension types (msgpack ``ext``)
---------------------------------------------
The PIER object model crosses the wire as-is — :class:`QuerySpec`
multicasts, :class:`DHTItem` replies, statistics partials, Bloom filters —
so the codec adds ext types on top of the standard scalars/arrays/maps:

====  ==========  =====================================================
code  type        payload
====  ==========  =====================================================
1     tuple       packed array (slotted rows, multicast ids, zone bounds)
2     set         packed array
3     frozenset   packed array
4     bigint      big-endian two's-complement bytes (128-bit DHT keys)
5     enum        packed ``[module, qualname, value]``
6     object      packed ``[module, qualname, state-map]``
7     sketch      tagged :mod:`repro.sketches` codec bytes
====  ==========  =====================================================

Objects are captured reflectively (``__dict__`` plus ``__slots__``) and
rebuilt with ``cls.__new__`` + ``object.__setattr__`` (which also restores
frozen dataclasses).  Per-class hooks drop transient state — e.g. a
:class:`repro.core.query.QuerySpec`'s compiled-opgraph cache, which every
receiver recompiles locally.

This is **not** pickle: decoding imports classes only from ``repro.*``
modules, never calls ``__reduce__``-style callables, and restores plain
attribute state.  The real transport still assumes a trusted cluster (any
peer can name any ``repro`` class); it is a wire format for one
administrative domain, exactly like the paper's deployments.
"""

from __future__ import annotations

import importlib
import struct
from enum import Enum
from typing import Any, Callable, Dict, List, Type

from repro.exceptions import NetworkError, SketchError
from repro.net.message import Message
from repro.sketches import SketchBase, sketch_from_bytes, sketch_to_bytes

#: Frames larger than this are rejected outright (oversized-frame guard):
#: nothing legitimate in this system approaches it, and a corrupt length
#: prefix must not make a reader try to buffer gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_EXT_TUPLE = 1
_EXT_SET = 2
_EXT_FROZENSET = 3
_EXT_BIGINT = 4
_EXT_ENUM = 5
_EXT_OBJECT = 6
_EXT_SKETCH = 7

#: Only classes from these package roots may be instantiated by the decoder.
_TRUSTED_ROOTS = ("repro.",)

#: Per-class state filters: class -> callable(state_dict) -> state_dict.
_STATE_FILTERS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {}


def _drop_keys(*keys: str) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    def _filter(state: Dict[str, Any]) -> Dict[str, Any]:
        for key in keys:
            state.pop(key, None)
        return state

    return _filter


# The compiled operator graph is plan-local (closures over node state);
# every receiver of a QuerySpec rebuilds it from the spec itself.
_STATE_FILTERS["repro.core.query:QuerySpec"] = _drop_keys("_opgraph_cache")


class WireError(NetworkError):
    """Raised for malformed, oversized or untrusted wire data."""


# ---------------------------------------------------------------- packing


class _Packer:
    __slots__ = ("_chunks",)

    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def bytes(self) -> bytes:
        return b"".join(self._chunks)

    def pack(self, value: Any) -> None:
        chunks = self._chunks
        if value is None:
            chunks.append(b"\xc0")
        elif value is True:
            chunks.append(b"\xc3")
        elif value is False:
            chunks.append(b"\xc2")
        elif type(value) is int:
            self._pack_int(value)
        elif type(value) is float:
            chunks.append(struct.pack(">Bd", 0xCB, value))
        elif type(value) is str:
            self._pack_str(value)
        elif type(value) is bytes or type(value) is bytearray:
            self._pack_bin(bytes(value))
        elif type(value) is list:
            self._pack_array_header(len(value))
            for item in value:
                self.pack(item)
        elif type(value) is dict:
            self._pack_map_header(len(value))
            for key, item in value.items():
                self.pack(key)
                self.pack(item)
        elif type(value) is tuple:
            self._pack_ext(_EXT_TUPLE, pack(list(value)))
        elif type(value) is set:
            self._pack_ext(_EXT_SET, pack(sorted(value, key=repr)))
        elif type(value) is frozenset:
            self._pack_ext(_EXT_FROZENSET, pack(sorted(value, key=repr)))
        elif isinstance(value, SketchBase):
            try:
                self._pack_ext(_EXT_SKETCH, sketch_to_bytes(value))
            except SketchError as exc:
                raise WireError(f"unserialisable sketch: {exc}") from exc
        elif isinstance(value, Enum):
            self._pack_ext(_EXT_ENUM, pack([
                type(value).__module__, type(value).__qualname__, value.value,
            ]))
        elif isinstance(value, float):  # float subclasses
            chunks.append(struct.pack(">Bd", 0xCB, float(value)))
        elif isinstance(value, int):  # bool handled above; int subclasses
            self._pack_int(int(value))
        elif isinstance(value, str):
            self._pack_str(str(value))
        else:
            self._pack_object(value)

    def _pack_int(self, value: int) -> None:
        chunks = self._chunks
        if 0 <= value <= 0x7F:
            chunks.append(struct.pack("B", value))
        elif -32 <= value < 0:
            chunks.append(struct.pack("b", value))
        elif 0 < value <= 0xFF:
            chunks.append(struct.pack(">BB", 0xCC, value))
        elif 0 < value <= 0xFFFF:
            chunks.append(struct.pack(">BH", 0xCD, value))
        elif 0 < value <= 0xFFFFFFFF:
            chunks.append(struct.pack(">BI", 0xCE, value))
        elif 0 < value <= 0xFFFFFFFFFFFFFFFF:
            chunks.append(struct.pack(">BQ", 0xCF, value))
        elif -0x80 <= value < 0:
            chunks.append(struct.pack(">Bb", 0xD0, value))
        elif -0x8000 <= value < 0:
            chunks.append(struct.pack(">Bh", 0xD1, value))
        elif -0x80000000 <= value < 0:
            chunks.append(struct.pack(">Bi", 0xD2, value))
        elif -0x8000000000000000 <= value < 0:
            chunks.append(struct.pack(">Bq", 0xD3, value))
        else:
            # Outside the 64-bit range the spec covers: 128-bit DHT keys,
            # Chord identifiers.  Shipped as a signed big-endian ext.
            width = (value.bit_length() + 8) // 8  # +8 keeps the sign bit
            payload = value.to_bytes(width, "big", signed=True)
            self._pack_ext(_EXT_BIGINT, payload)

    def _pack_str(self, value: str) -> None:
        data = value.encode("utf-8")
        length = len(data)
        chunks = self._chunks
        if length <= 0x1F:
            chunks.append(struct.pack("B", 0xA0 | length))
        elif length <= 0xFF:
            chunks.append(struct.pack(">BB", 0xD9, length))
        elif length <= 0xFFFF:
            chunks.append(struct.pack(">BH", 0xDA, length))
        else:
            chunks.append(struct.pack(">BI", 0xDB, length))
        chunks.append(data)

    def _pack_bin(self, data: bytes) -> None:
        length = len(data)
        chunks = self._chunks
        if length <= 0xFF:
            chunks.append(struct.pack(">BB", 0xC4, length))
        elif length <= 0xFFFF:
            chunks.append(struct.pack(">BH", 0xC5, length))
        else:
            chunks.append(struct.pack(">BI", 0xC6, length))
        chunks.append(data)

    def _pack_array_header(self, length: int) -> None:
        chunks = self._chunks
        if length <= 0x0F:
            chunks.append(struct.pack("B", 0x90 | length))
        elif length <= 0xFFFF:
            chunks.append(struct.pack(">BH", 0xDC, length))
        else:
            chunks.append(struct.pack(">BI", 0xDD, length))

    def _pack_map_header(self, length: int) -> None:
        chunks = self._chunks
        if length <= 0x0F:
            chunks.append(struct.pack("B", 0x80 | length))
        elif length <= 0xFFFF:
            chunks.append(struct.pack(">BH", 0xDE, length))
        else:
            chunks.append(struct.pack(">BI", 0xDF, length))

    def _pack_ext(self, code: int, payload: bytes) -> None:
        length = len(payload)
        chunks = self._chunks
        if length == 1:
            chunks.append(struct.pack(">Bb", 0xD4, code))
        elif length == 2:
            chunks.append(struct.pack(">Bb", 0xD5, code))
        elif length == 4:
            chunks.append(struct.pack(">Bb", 0xD6, code))
        elif length == 8:
            chunks.append(struct.pack(">Bb", 0xD7, code))
        elif length == 16:
            chunks.append(struct.pack(">Bb", 0xD8, code))
        elif length <= 0xFF:
            chunks.append(struct.pack(">BBb", 0xC7, length, code))
        elif length <= 0xFFFF:
            chunks.append(struct.pack(">BHb", 0xC8, length, code))
        else:
            chunks.append(struct.pack(">BIb", 0xC9, length, code))
        chunks.append(payload)

    def _pack_object(self, value: Any) -> None:
        cls = type(value)
        state: Dict[str, Any] = {}
        for klass in cls.__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot in ("__dict__", "__weakref__") or slot in state:
                    continue
                try:
                    state[slot] = getattr(value, slot)
                except AttributeError:
                    pass  # unset slot: simply absent from the wire state
        if hasattr(value, "__dict__"):
            state.update(value.__dict__)
        tag = f"{cls.__module__}:{cls.__qualname__}"
        if not tag.startswith(_TRUSTED_ROOTS):
            raise WireError(f"refusing to serialise non-repro object {tag}")
        fltr = _STATE_FILTERS.get(tag)
        if fltr is not None:
            state = fltr(state)
        self._pack_ext(_EXT_OBJECT, pack([
            cls.__module__, cls.__qualname__, state,
        ]))


def pack(value: Any) -> bytes:
    """Encode ``value`` into msgpack bytes."""
    packer = _Packer()
    packer.pack(value)
    return packer.bytes()


# -------------------------------------------------------------- unpacking


def _resolve_class(module: str, qualname: str) -> Type[Any]:
    if not any(module.startswith(root) or module == root.rstrip(".")
               for root in _TRUSTED_ROOTS):
        raise WireError(f"refusing to load class from untrusted module {module!r}")
    try:
        obj: Any = importlib.import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise WireError(f"unknown wire class {module}:{qualname}") from exc
    if not isinstance(obj, type):
        raise WireError(f"{module}:{qualname} is not a class")
    return obj


class _Unpacker:
    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise WireError("truncated msgpack data")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def unpack(self) -> Any:
        first = self._take(1)[0]
        if first <= 0x7F:
            return first
        if first >= 0xE0:
            return first - 0x100
        if 0x80 <= first <= 0x8F:
            return self._unpack_map(first & 0x0F)
        if 0x90 <= first <= 0x9F:
            return self._unpack_array(first & 0x0F)
        if 0xA0 <= first <= 0xBF:
            return self._take(first & 0x1F).decode("utf-8")
        handler = _UNPACK_DISPATCH.get(first)
        if handler is None:
            raise WireError(f"unsupported msgpack type byte 0x{first:02x}")
        return handler(self)

    def _unpack_array(self, length: int) -> List[Any]:
        return [self.unpack() for _ in range(length)]

    def _unpack_map(self, length: int) -> Dict[Any, Any]:
        result: Dict[Any, Any] = {}
        for _ in range(length):
            key = self.unpack()
            result[key] = self.unpack()
        return result

    def _unpack_ext(self, code: int, payload: bytes) -> Any:
        if code == _EXT_TUPLE:
            return tuple(unpack(payload))
        if code == _EXT_SET:
            return set(unpack(payload))
        if code == _EXT_FROZENSET:
            return frozenset(unpack(payload))
        if code == _EXT_BIGINT:
            return int.from_bytes(payload, "big", signed=True)
        if code == _EXT_ENUM:
            module, qualname, value = unpack(payload)
            return _resolve_class(module, qualname)(value)
        if code == _EXT_OBJECT:
            module, qualname, state = unpack(payload)
            cls = _resolve_class(module, qualname)
            instance = cls.__new__(cls)
            for name, value in state.items():
                object.__setattr__(instance, name, value)
            return instance
        if code == _EXT_SKETCH:
            try:
                return sketch_from_bytes(payload)
            except SketchError as exc:
                raise WireError(f"malformed sketch payload: {exc}") from exc
        raise WireError(f"unknown wire ext type {code}")


def _make_scalar(fmt: str, size: int) -> Callable[[_Unpacker], Any]:
    def _handler(self: _Unpacker) -> Any:
        return struct.unpack(fmt, self._take(size))[0]

    return _handler


def _make_str(fmt: str, size: int) -> Callable[[_Unpacker], str]:
    def _handler(self: _Unpacker) -> str:
        length = struct.unpack(fmt, self._take(size))[0]
        return self._take(length).decode("utf-8")

    return _handler


def _make_bin(fmt: str, size: int) -> Callable[[_Unpacker], bytes]:
    def _handler(self: _Unpacker) -> bytes:
        length = struct.unpack(fmt, self._take(size))[0]
        return bytes(self._take(length))

    return _handler


def _make_seq(fmt: str, size: int, is_map: bool) -> Callable[[_Unpacker], Any]:
    def _handler(self: _Unpacker) -> Any:
        length = struct.unpack(fmt, self._take(size))[0]
        return self._unpack_map(length) if is_map else self._unpack_array(length)

    return _handler


def _make_fixext(size: int) -> Callable[[_Unpacker], Any]:
    def _handler(self: _Unpacker) -> Any:
        code = struct.unpack("b", self._take(1))[0]
        return self._unpack_ext(code, self._take(size))

    return _handler


def _make_ext(fmt: str, size: int) -> Callable[[_Unpacker], Any]:
    def _handler(self: _Unpacker) -> Any:
        length = struct.unpack(fmt, self._take(size))[0]
        code = struct.unpack("b", self._take(1))[0]
        return self._unpack_ext(code, self._take(length))

    return _handler


_UNPACK_DISPATCH: Dict[int, Callable[[_Unpacker], Any]] = {
    0xC0: lambda self: None,
    0xC2: lambda self: False,
    0xC3: lambda self: True,
    0xC4: _make_bin(">B", 1),
    0xC5: _make_bin(">H", 2),
    0xC6: _make_bin(">I", 4),
    0xC7: _make_ext(">B", 1),
    0xC8: _make_ext(">H", 2),
    0xC9: _make_ext(">I", 4),
    0xCA: _make_scalar(">f", 4),
    0xCB: _make_scalar(">d", 8),
    0xCC: _make_scalar(">B", 1),
    0xCD: _make_scalar(">H", 2),
    0xCE: _make_scalar(">I", 4),
    0xCF: _make_scalar(">Q", 8),
    0xD0: _make_scalar("b", 1),
    0xD1: _make_scalar(">h", 2),
    0xD2: _make_scalar(">i", 4),
    0xD3: _make_scalar(">q", 8),
    0xD4: _make_fixext(1),
    0xD5: _make_fixext(2),
    0xD6: _make_fixext(4),
    0xD7: _make_fixext(8),
    0xD8: _make_fixext(16),
    0xD9: _make_str(">B", 1),
    0xDA: _make_str(">H", 2),
    0xDB: _make_str(">I", 4),
    0xDC: _make_seq(">H", 2, False),
    0xDD: _make_seq(">I", 4, False),
    0xDE: _make_seq(">H", 2, True),
    0xDF: _make_seq(">I", 4, True),
}


def unpack(data: bytes) -> Any:
    """Decode one msgpack value from ``data`` (which must be exactly one)."""
    unpacker = _Unpacker(data)
    value = unpacker.unpack()
    if unpacker._pos != len(data):
        raise WireError(
            f"trailing bytes after msgpack value ({len(data) - unpacker._pos})"
        )
    return value


# ---------------------------------------------------------------- framing


def encode_frame(value: Any, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One wire frame: 4-byte big-endian length prefix + msgpack body."""
    body = pack(value)
    if len(body) > max_frame_bytes:
        raise WireError(f"frame of {len(body)} bytes exceeds {max_frame_bytes}")
    return struct.pack(">I", len(body)) + body


class FrameDecoder:
    """Incremental frame splitter for a TCP byte stream.

    Feed it whatever ``recv`` produced; it yields complete decoded values
    and buffers partial frames across calls.  A length prefix above the
    frame limit raises — the connection is poisoned and must be dropped.
    """

    __slots__ = ("_buffer", "_max")

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max = max_frame_bytes

    def feed(self, data: bytes) -> List[Any]:
        """Absorb ``data``; return every frame completed by it, in order."""
        self._buffer.extend(data)
        frames: List[Any] = []
        while True:
            if len(self._buffer) < 4:
                return frames
            (length,) = struct.unpack_from(">I", self._buffer)
            if length > self._max:
                raise WireError(
                    f"incoming frame of {length} bytes exceeds {self._max}"
                )
            if len(self._buffer) < 4 + length:
                return frames
            body = bytes(self._buffer[4:4 + length])
            del self._buffer[:4 + length]
            frames.append(unpack(body))


# ------------------------------------------------------- message envelopes


def message_to_wire(message: Message) -> Dict[str, Any]:
    """The node-to-node frame body for a :class:`Message`."""
    return {
        "t": "msg",
        "src": message.src,
        "dst": message.dst,
        "protocol": message.protocol,
        "payload": message.payload,
        "payload_bytes": message.payload_bytes,
        "hops": message.hops,
    }


def message_from_wire(body: Dict[str, Any]) -> Message:
    """Rebuild the :class:`Message` a peer framed with :func:`message_to_wire`."""
    return Message(
        src=body["src"],
        dst=body["dst"],
        protocol=body["protocol"],
        payload=body.get("payload"),
        payload_bytes=body.get("payload_bytes", 0),
        hops=body.get("hops", 0),
    )


__all__ = [
    "MAX_FRAME_BYTES",
    "FrameDecoder",
    "WireError",
    "encode_frame",
    "message_from_wire",
    "message_to_wire",
    "pack",
    "unpack",
]
