"""Host nodes (simulated or real).

A :class:`Node` is one participant machine: it has an integer address, a
registry of protocol handlers (the DHT and the PIER query processor register
themselves here), an aliveness flag used by the failure injector, and a
reference to a :class:`repro.net.transport.Transport` so upper layers can
send messages and schedule timers without knowing whether they run under
the virtual-clock simulator or over real sockets.

The handler registry is a simple string-keyed dispatch table.  Handlers
receive the :class:`repro.net.message.Message` that arrived; replies are sent
explicitly via :meth:`Node.send`, never returned, because everything in this
system is asynchronous (matching PIER's callback-based design).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.exceptions import NetworkError
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.transport import Transport

Handler = Callable[["Node", Message], None]


class Node:
    """One machine participating in the overlay (over either transport)."""

    def __init__(self, address: int, network: "Transport"):
        self.address = int(address)
        self.network = network
        self.alive = True
        self._handlers: Dict[str, Handler] = {}
        self._bounce_handlers: Dict[str, Handler] = {}
        #: Free-form per-node services (DHT instance, provider, executor...).
        self.services: Dict[str, Any] = {}

    # ----------------------------------------------------------- registration

    def register_handler(self, protocol: str, handler: Handler) -> None:
        """Register ``handler`` for messages whose protocol equals ``protocol``."""
        if protocol in self._handlers:
            raise NetworkError(
                f"node {self.address}: handler already registered for {protocol!r}"
            )
        self._handlers[protocol] = handler

    def replace_handler(self, protocol: str, handler: Handler) -> None:
        """Register or overwrite the handler for ``protocol``."""
        self._handlers[protocol] = handler

    def unregister_handler(self, protocol: str) -> None:
        """Remove the handler for ``protocol`` if present."""
        self._handlers.pop(protocol, None)

    def has_handler(self, protocol: str) -> bool:
        """Whether a handler is registered for ``protocol``."""
        return protocol in self._handlers

    def register_bounce_handler(self, protocol: str, handler: Handler) -> None:
        """Register a handler for transport-level delivery failures.

        When a message of the given protocol is sent to a node that is
        currently down, the network notifies the sender (after one extra
        propagation delay, standing in for a connection timeout / reset) by
        invoking this handler with the original message.  Layers that can
        re-route — the DHT routing layers — use this to step around failed
        nodes immediately instead of waiting for the periodic keep-alive
        detection.
        """
        self._bounce_handlers[protocol] = handler

    def deliver_bounce(self, original: Message) -> None:
        """Deliver a transport failure notification for ``original``."""
        if not self.alive:
            return
        handler = self._bounce_handlers.get(original.protocol)
        if handler is not None:
            handler(self, original)

    # ----------------------------------------------------------------- I/O

    def send(self, dst: int, protocol: str, payload: Any = None,
             payload_bytes: int = 0, hops: int = 0) -> Message:
        """Send a message to another node through the network."""
        message = Message(
            src=self.address,
            dst=dst,
            protocol=protocol,
            payload=payload,
            payload_bytes=payload_bytes,
            hops=hops,
        )
        self.network.send(message)
        return message

    def deliver(self, message: Message) -> None:
        """Deliver an arriving message to the registered handler.

        Messages arriving at a dead node are silently dropped (the network
        has already accounted for the drop); messages with no registered
        handler raise, because that is always a wiring bug in this code base.
        """
        if not self.alive:
            return
        handler = self._handlers.get(message.protocol)
        if handler is None:
            raise NetworkError(
                f"node {self.address}: no handler for protocol {message.protocol!r}"
            )
        handler(self, message)

    # --------------------------------------------------------------- timers

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any):
        """Schedule a local timer; skipped automatically if the node is dead."""

        def _guarded() -> None:
            if self.alive:
                callback(*args)

        return self.network.timers.schedule(delay, _guarded)

    def schedule_periodic(self, period: float, callback: Callable[..., None],
                          *args: Any, initial_delay: Optional[float] = None):
        """Schedule a periodic local timer that pauses while the node is dead."""

        def _guarded() -> None:
            if self.alive:
                callback(*args)

        return self.network.timers.schedule_periodic(
            period, _guarded, initial_delay=initial_delay
        )

    @property
    def now(self) -> float:
        """Current time on this node's transport clock."""
        return self.network.timers.now

    # --------------------------------------------------------------- failure

    def fail(self) -> None:
        """Mark the node as failed; it stops processing messages and timers."""
        self.alive = False

    def recover(self) -> None:
        """Bring the node back up (with whatever state upper layers left it)."""
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"Node({self.address}, {state}, handlers={sorted(self._handlers)})"
