"""The transport seam: one message/timer surface, two implementations.

Everything above :class:`repro.net.node.Node` — the DHT routing layers, the
Provider, the multicast service, the query executor — talks to the outside
world through exactly two operations on the object it calls ``network``:

* ``network.send(message)`` — asynchronous, fire-and-forget delivery of a
  :class:`repro.net.message.Message` to another node (or back to itself).
* ``network.timers`` — a :class:`TimerService` used for soft-state sweeps,
  keep-alives, collection windows and request timeouts.

:class:`Transport` names that seam.  The discrete-event
:class:`repro.net.network.SimulatedNetwork` implements it with a virtual
clock (its ``timers`` *is* the :class:`repro.net.simulator.Simulator`), and
:class:`repro.net.real.RealTransport` implements it with asyncio TCP
sockets and wall-clock timers.  Because the upper layers never look past
this surface, ``core/``, ``dht/`` and ``client.py`` run unchanged over
either — the property the paper relies on when it moves between the
simulator and the 64-node cluster deployment with one code base.

Delivery contract (both implementations):

* Sends never block and never raise for remote conditions; they may raise
  for local programming errors (unknown address in the simulator).
* Messages between a pair of live nodes arrive in send order.
* A message to a dead/unreachable node is dropped; if the *sender*
  registered a bounce handler for the protocol, it is notified
  asynchronously via ``Node.deliver_bounce`` (a transport timeout stand-in).
* Local sends (``src == dst``) are still asynchronous: the handler runs on
  a later tick, never inside the caller's stack frame.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional

from repro.net.message import Message


class TimerService(ABC):
    """Clock plus one-shot and periodic timers (the Simulator's surface).

    Handles returned by :meth:`schedule` expose ``cancel()``, ``cancelled``
    and ``time`` (the absolute due time on this service's clock); handles
    returned by :meth:`schedule_periodic` expose ``cancel()`` and
    ``active``.  The simulator's :class:`repro.net.simulator.EventHandle` /
    :class:`~repro.net.simulator.PeriodicHandle` and the real transport's
    wall-clock handles both satisfy this.
    """

    @property
    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock monotonic)."""

    @abstractmethod
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Any:
        """Run ``callback(*args)`` once, ``delay`` seconds from now.

        Returns a handle exposing ``cancel()`` / ``cancelled`` / ``time``;
        the concrete handle type is implementation-specific.
        """

    @abstractmethod
    def schedule_periodic(self, period: float, callback: Callable[..., None],
                          *args: Any, initial_delay: Optional[float] = None) -> Any:
        """Run ``callback(*args)`` every ``period`` seconds until cancelled.

        Returns a handle exposing ``cancel()`` / ``active``.
        """


class Transport(ABC):
    """Message fabric + timer service one node (or a whole simulation) uses.

    The simulated implementation hosts *every* node of a deployment behind
    one Transport; the real implementation hosts exactly one node per
    process and turns remote addresses into TCP connections.  Upper layers
    cannot tell the difference — they hold a ``network`` reference and use
    only this surface.
    """

    @property
    @abstractmethod
    def timers(self) -> TimerService:
        """The timer service local handlers schedule their soft state on."""

    @abstractmethod
    def send(self, message: Message) -> None:
        """Queue ``message`` for asynchronous delivery (see module docs)."""

    def forget_peer(self, address: int) -> None:
        """Release any per-peer delivery state held for ``address``.

        Called by the membership layer when a node leaves the cluster for
        good (graceful departure, confirmed permanent removal).  The
        default is a no-op: the simulator keeps no per-peer state.  The
        real transport drops the pooled connection and bounces frames
        still queued for the departed peer.
        """
