"""Discrete-event network simulation substrate.

The paper evaluates PIER inside a message-level simulator (fully-connected
and transit-stub topologies) and on a 64-node cluster, all sharing one code
base.  This package provides that substrate for the reproduction:

* :mod:`repro.net.simulator` — the virtual-clock event loop.
* :mod:`repro.net.message` — typed messages with wire sizes.
* :mod:`repro.net.node` — simulated hosts with protocol handler registries.
* :mod:`repro.net.topology` — latency/bandwidth models (full mesh).
* :mod:`repro.net.transit_stub` — GT-ITM-style transit-stub topology.
* :mod:`repro.net.cluster` — LAN cluster topology used for the
  "deployment" experiment (Figure 8).
* :mod:`repro.net.links` — inbound-link serialisation/queueing model.
* :mod:`repro.net.stats` — per-node and aggregate traffic accounting.
* :mod:`repro.net.failures` — failure injection and keep-alive detection.
"""

from repro.net.simulator import Simulator
from repro.net.message import Message
from repro.net.node import Node
from repro.net.network import Network, SimulatedNetwork
from repro.net.real import RealTransport, WallClockTimers
from repro.net.transport import TimerService, Transport
from repro.net.topology import FullMeshTopology, Topology
from repro.net.transit_stub import TransitStubTopology
from repro.net.cluster import ClusterTopology
from repro.net.stats import TrafficStats
from repro.net.failures import FailureInjector

__all__ = [
    "Simulator",
    "Message",
    "Node",
    "Network",
    "SimulatedNetwork",
    "Transport",
    "TimerService",
    "RealTransport",
    "WallClockTimers",
    "Topology",
    "FullMeshTopology",
    "TransitStubTopology",
    "ClusterTopology",
    "TrafficStats",
    "FailureInjector",
]
