"""Client-side access to a real PIER cluster: ``RemotePier``.

A :class:`RemotePier` is the real-cluster counterpart of
:class:`repro.harness.experiment.PierNetwork` *as seen by a client*: it
exposes the duck-typed surface :class:`repro.client.PierClient` needs —
``executor(node)``, ``network`` — plus the fast-load helper, so the very
same client/cursor code that drives the simulator drives a cluster of
``python -m repro.node`` processes over TCP::

    pier = RemotePier.connect("127.0.0.1", 9100)
    pier.load_relation(workload.r_relation, workload.r_by_node)
    client = PierClient(pier, node=pier.gateway_address, catalog=...)
    rows = client.sql("SELECT ... ", strategy=JoinStrategy.SYMMETRIC_HASH,
                      timeout_s=30.0).fetchall()

How the cursor drive loop maps onto sockets
-------------------------------------------
``ResultCursor`` drives a deployment through three calls: ``network.now``,
``network.simulator.next_event_time()`` and ``network.run(until=...)``.
Over a real cluster those become wall-clock reads and bounded socket pumps:
``now`` is ``time.monotonic()``, the "next event" is one poll interval
away, and ``run(until=t)`` reads result-event frames off the gateway
connection until ``t``.  Timeouts, LIMIT handling, initiator-side
aggregation finalisation — all of the cursor's logic — run unchanged.

Everything here is synchronous (plain sockets with timeouts): the client is
a driver, not a server, and blocking with deadlines keeps it trivially
embeddable in tests and scripts.
"""

from __future__ import annotations

import itertools
import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.executor import QueryHandle
from repro.core.query import QuerySpec
from repro.core.stats import StatsRegistry
from repro.core.tuples import RelationDef
from repro.exceptions import (
    GatewayError,
    NetworkError,
    NodeNotReadyError,
    UnknownNamespaceError,
)
from repro.harness.overlay import OwnerLocator
from repro.net.wire import FrameDecoder, encode_frame

#: How far ahead the drive shim reports the "next event" (the poll period).
POLL_INTERVAL_S = 0.05
#: Socket-level timeout on every blocking operation (hard hang guard).
SOCKET_TIMEOUT_S = 10.0
#: How long ``run_until_idle`` pumps for trailing frames.
IDLE_GRACE_S = 0.2


class GatewayConnection:
    """One framed TCP connection to a node's gateway."""

    def __init__(self, host: str, port: int,
                 timeout_s: float = SOCKET_TIMEOUT_S):
        self.endpoint = (host, port)
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._sock.settimeout(timeout_s)
        self._decoder = FrameDecoder()
        self._rpc_ids = itertools.count(1)
        #: Responses that arrived while waiting for a different frame.
        self._responses: Dict[int, dict] = {}
        #: query_id -> QueryHandle receiving streamed rows.
        self.handles: Dict[int, QueryHandle] = {}

    # ------------------------------------------------------------------ rpc

    def rpc(self, op: str, timeout_s: float = SOCKET_TIMEOUT_S,
            **fields: Any) -> dict:
        """Send one request and block until its response arrives.

        Event frames arriving in between are dispatched to their handles,
        so a pending query keeps streaming while the client issues RPCs.
        """
        request_id = next(self._rpc_ids)
        frame = {"t": "rpc", "id": request_id, "op": op}
        frame.update(fields)
        self._sock.sendall(encode_frame(frame))
        deadline = time.monotonic() + timeout_s
        while True:
            response = self._responses.pop(request_id, None)
            if response is not None:
                if not response.get("ok"):
                    raise self._error_for(op, response)
                return response
            if time.monotonic() >= deadline:
                raise NetworkError(
                    f"rpc {op!r} to {self.endpoint} timed out after {timeout_s}s"
                )
            self._pump_once(deadline)

    def _error_for(self, op: str, response: dict) -> NetworkError:
        """Map a structured error frame onto the typed exception hierarchy."""
        message = (f"rpc {op!r} failed on {self.endpoint}: "
                   f"{response.get('error')}")
        code = response.get("code", "internal")
        if code == NodeNotReadyError.code:
            return NodeNotReadyError(message)
        if code == UnknownNamespaceError.code:
            return UnknownNamespaceError(message)
        return GatewayError(message, code=code)

    # ----------------------------------------------------------------- pump

    def pump(self, until: float) -> int:
        """Read frames until wall-clock ``until`` (monotonic); return count."""
        dispatched = 0
        while time.monotonic() < until:
            dispatched += self._pump_once(until)
        return dispatched

    def _pump_once(self, deadline: float) -> int:
        budget = deadline - time.monotonic()
        if budget <= 0:
            return 0
        self._sock.settimeout(min(budget, SOCKET_TIMEOUT_S))
        try:
            data = self._sock.recv(65536)
        except socket.timeout:
            return 0
        if not data:
            raise NetworkError(f"gateway {self.endpoint} closed the connection")
        dispatched = 0
        for frame in self._decoder.feed(data):
            self._dispatch(frame)
            dispatched += 1
        return dispatched

    def _dispatch(self, frame: Any) -> None:
        if not isinstance(frame, dict):
            return
        kind = frame.get("t")
        if kind == "res":
            self._responses[frame.get("id")] = frame
        elif kind == "evt" and frame.get("kind") == "rows":
            handle = self.handles.get(frame.get("query_id"))
            if handle is not None:
                base = handle.submitted_at
                for elapsed, row in zip(frame["times"], frame["rows"]):
                    handle.record(base + elapsed, row)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class _WallClockShim:
    """``simulator``-shaped poll hints for :class:`ResultCursor`."""

    __slots__ = ("poll_interval_s",)

    def __init__(self, poll_interval_s: float = POLL_INTERVAL_S):
        self.poll_interval_s = poll_interval_s

    @property
    def now(self) -> float:
        return time.monotonic()

    def next_event_time(self) -> float:
        # A real cluster is never "idle" from the client's view; the next
        # thing worth doing is always one poll interval away.
        return time.monotonic() + self.poll_interval_s


class _RemoteNetwork:
    """The ``network`` surface cursors drive, mapped onto socket pumps."""

    def __init__(self, pier: "RemotePier"):
        self._pier = pier
        self.simulator = _WallClockShim()

    @property
    def now(self) -> float:
        return time.monotonic()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        horizon = time.monotonic() + POLL_INTERVAL_S if until is None else until
        self._pier.pump(horizon)
        return time.monotonic()

    def run_until_idle(self, max_events: Optional[int] = None) -> float:
        self._pier.pump(time.monotonic() + IDLE_GRACE_S)
        return time.monotonic()


class RemoteExecutor:
    """Initiator-side executor proxy: submit/finish over the gateway RPC.

    Holds a local :class:`StatsRegistry` so ``PierClient``'s AUTO planning
    has a registry to read (fed by :meth:`RemotePier.load_relation`'s
    client-side partials); it deliberately has **no** ``provider``
    attribute, which makes the client's DHT statistics refresh a no-op —
    planning over a real cluster uses the loader's ground-truth partials.
    """

    def __init__(self, pier: "RemotePier", address: int):
        self._pier = pier
        self.address = address
        self.stats: StatsRegistry = pier.relation_stats

    def submit(self, query: QuerySpec) -> QueryHandle:
        gateway = self._pier.gateway
        handle = QueryHandle(query, submitted_at=time.monotonic())
        gateway.handles[query.query_id] = handle
        response = gateway.rpc("submit", query=query)
        query.initiator = self._pier.gateway_address
        assert response["query_id"] == query.query_id
        return handle

    def finish(self, query_id: int, record_feedback: bool = False) -> None:
        self._pier.gateway.rpc("finish", query_id=query_id,
                               record_feedback=record_feedback)


class RemotePier:
    """Client-side handle on a running real cluster.

    Duck-typed to what :class:`repro.client.PierClient` and its cursors
    need from a ``pier``: ``executor(node)``, ``network``, ``num_nodes``.
    Construction connects to one node (the *gateway*) and fetches the
    membership map; per-owner connections for fast loading open lazily.
    """

    def __init__(self, gateway: GatewayConnection):
        self.gateway = gateway
        status = gateway.rpc("status")
        if not status["ready"]:
            raise NodeNotReadyError("gateway node is not ready")
        self.gateway_address: int = status["address"]
        self.config: Dict[str, Any] = status["config"]
        self.endpoints: Dict[int, Tuple[str, int]] = {
            int(a): (e[0], int(e[1])) for a, e in status["nodes"].items()
        }
        #: Members the cluster has confirmed dead (refreshed with status).
        self.dead: set = set(status.get("dead", ()))
        #: Gateways this client itself lost mid-session (failover history).
        self._dead_gateways: set = set()
        self.locator = OwnerLocator(
            list(self.endpoints),
            dht=self.config["dht"],
            can_dimensions=self.config["can_dimensions"],
            seed=self.config["seed"],
        )
        self.network = _RemoteNetwork(self)
        #: Ground-truth statistics over everything this client loaded.
        self.relation_stats = StatsRegistry()
        self._connections: Dict[int, GatewayConnection] = {
            self.gateway_address: gateway,
        }

    @classmethod
    def connect(cls, host: str, port: int,
                timeout_s: float = SOCKET_TIMEOUT_S) -> "RemotePier":
        """Open a session against the node listening on ``host:port``."""
        return cls(GatewayConnection(host, port, timeout_s=timeout_s))

    # ----------------------------------------------------------- pier surface

    @property
    def num_nodes(self) -> int:
        return len(self.endpoints)

    def executor(self, node: int) -> RemoteExecutor:
        if node != self.gateway_address and node not in self._dead_gateways:
            raise NetworkError(
                f"this session's gateway is node {self.gateway_address}; "
                f"connect() to node {node}'s endpoint to initiate from it"
            )
        return RemoteExecutor(self, self.gateway_address)

    # -------------------------------------------------------------- failover

    def pump(self, until: float) -> int:
        """Pump the gateway connection, failing over if the gateway died.

        The drive loop's socket pump is where a crashed gateway first shows
        up client-side (connection reset / closed / stalled).  Rather than
        surfacing a transport error mid-query, the session re-homes onto
        another live member: result streaming resumes there for queries it
        participates in, and the cursor's own timeout/completeness
        accounting reports whatever was lost.
        """
        try:
            return self.gateway.pump(until)
        except (NetworkError, OSError):
            self.failover()
            return 0

    def failover(self) -> None:
        """Re-home this session on another live member after a gateway loss."""
        dead_address = self.gateway_address
        dead_conn = self.gateway
        self._dead_gateways.add(dead_address)
        self._connections.pop(dead_address, None)
        dead_conn.close()
        for address in sorted(self.endpoints):
            if address == dead_address or address in self._dead_gateways:
                continue
            if address in self.dead:
                continue
            host, port = self.endpoints[address]
            try:
                conn = GatewayConnection(host, port)
                status = conn.rpc("status", timeout_s=2.0)
            except (NetworkError, OSError):
                continue
            if not status.get("ready"):
                conn.close()
                continue
            # Streamed rows for in-flight queries must keep landing in their
            # handles; the new gateway pushes events only for queries *it*
            # executes locally, so rows already en route die with the old
            # gateway — that loss is what completeness reports.
            conn.handles.update(dead_conn.handles)
            self.gateway = conn
            self.gateway_address = address
            self._connections[address] = conn
            self.dead = set(status.get("dead", ()))
            return
        raise NetworkError(
            f"gateway node {dead_address} died and no other member of "
            f"{sorted(self.endpoints)} is reachable"
        )

    def refresh_membership(self) -> None:
        """Re-read the membership map (after joins/leaves) from the gateway.

        Rebuilds the client-side owner locator over the new address list so
        subsequent fast loads and scans place keys exactly where the
        cluster's rebuilt overlay expects them.
        """
        status = self.gateway.rpc("status")
        self.config = status["config"]
        self.dead = set(status.get("dead", ()))
        endpoints = {
            int(a): (e[0], int(e[1])) for a, e in status["nodes"].items()
        }
        if set(endpoints) != set(self.endpoints):
            self.locator.rebuild(list(endpoints))
        self.endpoints = endpoints
        for address in list(self._connections):
            if address not in endpoints:
                self._connections.pop(address).close()

    def leave_node(self, address: int, timeout_s: float = 15.0) -> None:
        """Ask ``address`` to leave gracefully; wait until the cluster agrees."""
        if address == self.gateway_address:
            raise NetworkError("refusing to leave through the session gateway; "
                               "connect another gateway first")
        self.connection(address).rpc("leave")
        self._connections.pop(address, None).close()
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            self.refresh_membership()
            if address not in self.endpoints:
                return
            time.sleep(0.1)
        raise NetworkError(f"node {address} still in the membership after "
                           f"{timeout_s}s")

    def collect_completeness(self, report, temp_namespaces) -> Any:
        """Aggregate per-node delivery accounting for one query.

        The remote counterpart of the client's in-process sweep over
        ``pier.providers`` / ``pier.executors``: every reachable member
        reports its get scope, lost fragments and executor state.  Members
        that died simply don't report — their absence *is* the loss, and it
        already shows up as failed/pending gets on the survivors.
        """
        for address in sorted(self.endpoints):
            if address in self.dead or address in self._dead_gateways:
                continue
            try:
                part = self.connection(address).rpc(
                    "completeness", query_id=report.query_id,
                    namespaces=sorted(temp_namespaces), timeout_s=2.0,
                )
            except (NetworkError, OSError):
                continue
            scope = part["gets"]
            report.gets_issued += scope["issued"]
            report.gets_completed += scope["completed"]
            report.gets_failed += scope["failed"]
            report.gets_pending += scope["pending"]
            report.fragments_lost += part["fragments_lost"]
            if part["has_state"]:
                report.nodes_with_state += 1
                report.degraded_ops += part["degraded_ops"]
        return report

    def connection(self, node: int) -> GatewayConnection:
        """A (cached) gateway connection to any cluster node."""
        conn = self._connections.get(node)
        if conn is None:
            host, port = self.endpoints[node]
            conn = GatewayConnection(host, port)
            self._connections[node] = conn
        return conn

    # ------------------------------------------------------------------ load

    def load_relation(self, relation: RelationDef,
                      rows_by_node: Dict[int, List[dict]],
                      lifetime: float = 1e9,
                      publish_stats: bool = True) -> int:
        """Fast-load a relation into the cluster (direct store at owners).

        Same shape as the simulator harness's fast load: the client groups
        each publisher's rows by owner (ownership is a deterministic
        function of the membership — :class:`OwnerLocator`), ships every
        group to its owner's gateway in one ``store`` RPC, and publishes
        per-publisher statistics partials at the statistics owner.  RPC
        acknowledgements make the load synchronous: when this returns, every
        tuple is scannable at its owner.
        """
        from repro.core.stats import (
            STATS_ITEM_BYTES,
            STATS_LIFETIME_S,
            STATS_NAMESPACE,
            RelationStats,
            relation_stats_resource_id,
        )

        by_owner: Dict[int, List[dict]] = {}
        loaded = 0
        for publisher, rows in rows_by_node.items():
            if rows and publish_stats:
                partial = RelationStats.from_rows(relation, rows,
                                                  at=time.monotonic())
                self.relation_stats.merge_partial(partial)
                stats_rid = relation_stats_resource_id(relation.name)
                owner = self.locator.owner_of(STATS_NAMESPACE, stats_rid)
                by_owner.setdefault(owner, []).append({
                    "namespace": STATS_NAMESPACE,
                    "resource_id": stats_rid,
                    "value": partial,
                    "lifetime": STATS_LIFETIME_S,
                    "publisher": publisher,
                    "size_bytes": STATS_ITEM_BYTES,
                })
            for row in rows:
                resource_id = relation.resource_id(row)
                owner = self.locator.owner_of(relation.namespace, resource_id)
                by_owner.setdefault(owner, []).append({
                    "namespace": relation.namespace,
                    "resource_id": resource_id,
                    "value": row,
                    "lifetime": lifetime,
                    "publisher": publisher,
                    "size_bytes": relation.tuple_bytes,
                })
                loaded += 1
        for owner, items in by_owner.items():
            self.connection(owner).rpc("store", items=items)
        return loaded

    # ------------------------------------------------------------- utilities

    def scan_count(self, namespace: str) -> int:
        """Total item count of ``namespace`` across live nodes (diagnostics)."""
        return sum(
            self.connection(node).rpc("scan_count", namespace=namespace)["count"]
            for node in self.endpoints
            if node not in self.dead and node not in self._dead_gateways
        )

    def client(self, catalog=None, **client_options):
        """A :class:`repro.client.PierClient` session over this gateway."""
        from repro.client import PierClient

        return PierClient(self, node=self.gateway_address, catalog=catalog,
                          **client_options)

    def shutdown_cluster(self) -> None:
        """Ask every node process to exit (used by demos; tests terminate)."""
        for node in list(self.endpoints):
            try:
                self.connection(node).rpc("shutdown", timeout_s=2.0)
            except (NetworkError, OSError):
                pass

    def close(self) -> None:
        for conn in self._connections.values():
            conn.close()
        self._connections.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RemotePier(gateway={self.gateway_address}, "
                f"nodes={self.num_nodes}, dht={self.config.get('dht')!r})")


__all__ = ["GatewayConnection", "RemoteExecutor", "RemotePier"]
