"""KLL quantile sketch: bounded-size percentiles (``APPROX_PERCENTILE(x, p)``).

The KLL compactor hierarchy (Karnin/Lang/Liberty): level ``h`` holds a
buffer of values each representing ``2**h`` originals.  When a level
overflows its capacity — ``k`` at the top, shrinking by 2/3 per level below
it — the buffer is sorted and every second element is promoted to the level
above, halving the stored mass while keeping ranks approximately intact.
Total storage is bounded by ~``3k`` values plus a logarithmic tail, so the
serialised partial is effectively constant in the stream length.

Classic KLL flips a fair coin to pick the odd- or even-indexed survivors of
each compaction.  A distributed deployment wants *deterministic* estimates
(the simulator-vs-real-TCP gate diffs result rows byte-for-byte), so this
implementation derandomises the coin: it alternates per compaction, which
preserves the rank-error cancellation the random coin provides on average
while making a sketch a pure function of its operation sequence.  Unlike
HLL/count-min, KLL merges are only *approximately* order-insensitive — every
order satisfies the same rank-error bound, but estimates may differ by a few
ranks between merge shapes; tests assert the bound, not bit-equality.
"""

from __future__ import annotations

import math
import struct
from typing import Any, List, Optional, Tuple

from repro.exceptions import SketchError
from repro.sketches.base import DEFAULT_SEED, SketchBase, register_sketch

#: Default top-level capacity: rank error ~1.5/k ≈ 0.8 % of the total mass.
DEFAULT_KLL_K = 200
MIN_KLL_K = 8
MAX_KLL_K = 1 << 14
_MAX_LEVELS = 64


@register_sketch
class KLLSketch(SketchBase):
    """Mergeable quantile sketch over numeric values."""

    WIRE_TAG = 3

    __slots__ = ("k", "seed", "levels", "coin")

    def __init__(self, k: int = DEFAULT_KLL_K, seed: int = DEFAULT_SEED,
                 levels: Optional[List[List[float]]] = None, coin: int = 0):
        k = int(k)
        if not MIN_KLL_K <= k <= MAX_KLL_K:
            raise SketchError(f"KLL k must be in {MIN_KLL_K}..{MAX_KLL_K}, got {k}")
        self.k = k
        self.seed = int(seed)
        self.levels: List[List[float]] = levels if levels is not None else [[]]
        self.coin = int(coin) & 1

    # ------------------------------------------------------------------ algebra

    def add(self, value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SketchError(
                f"KLL sketches summarise numeric values, got {type(value).__name__}"
            )
        self.levels[0].append(float(value))
        self._compress()

    def merge(self, other: SketchBase) -> None:
        self._require_compatible(other, "k", "seed")
        assert isinstance(other, KLLSketch)  # guaranteed by the check above
        while len(self.levels) < len(other.levels):
            self.levels.append([])
        for level, buffer in enumerate(other.levels):
            self.levels[level].extend(buffer)
        self.coin ^= other.coin
        self._compress()

    def _capacity(self, level: int, num_levels: int) -> int:
        return max(2, int(math.ceil(self.k * (2.0 / 3.0) ** (num_levels - 1 - level))))

    def _compress(self) -> None:
        while True:
            num_levels = len(self.levels)
            for level in range(num_levels):
                if len(self.levels[level]) > self._capacity(level, num_levels):
                    self._compact(level)
                    break
            else:
                return

    def _compact(self, level: int) -> None:
        buffer = sorted(self.levels[level])
        even_length = (len(buffer) // 2) * 2
        survivors = buffer[self.coin:even_length:2]
        self.coin ^= 1
        self.levels[level] = buffer[even_length:]  # odd leftover stays put
        if level + 1 == len(self.levels):
            self.levels.append([])
        self.levels[level + 1].extend(survivors)

    # ---------------------------------------------------------------- estimates

    def total_weight(self) -> int:
        """Number of values the sketch summarises."""
        return sum(len(buffer) << level for level, buffer in enumerate(self.levels))

    def _weighted(self) -> List[Tuple[float, int]]:
        items = [
            (value, 1 << level)
            for level, buffer in enumerate(self.levels)
            for value in buffer
        ]
        items.sort(key=lambda item: item[0])
        return items

    def quantile(self, p: float) -> Optional[float]:
        """Estimated value at rank ``p`` (0 → min, 0.5 → median, 1 → max)."""
        if not 0.0 <= p <= 1.0:
            raise SketchError(f"percentile must be in [0, 1], got {p}")
        items = self._weighted()
        if not items:
            return None
        total = sum(weight for _value, weight in items)
        target = p * total
        cumulative = 0
        for value, weight in items:
            cumulative += weight
            if cumulative >= target:
                return value
        return items[-1][0]

    def rank(self, value: float) -> float:
        """Estimated fraction of the stream that is ``<= value``."""
        items = self._weighted()
        total = sum(weight for _value, weight in items)
        if not total:
            return 0.0
        below = sum(weight for item, weight in items if item <= value)
        return below / total

    def estimate(self, p: float = 0.5) -> Optional[float]:
        return self.quantile(p)

    # -------------------------------------------------------------------- codec

    def to_payload(self) -> bytes:
        parts = [struct.pack(">IQBB", self.k, self.seed, self.coin,
                             len(self.levels))]
        for buffer in self.levels:
            parts.append(struct.pack(">I", len(buffer)))
            parts.append(struct.pack(f">{len(buffer)}d", *buffer))
        return b"".join(parts)

    @classmethod
    def from_payload(cls, payload: bytes) -> "KLLSketch":
        try:
            k, seed, coin, num_levels = struct.unpack_from(">IQBB", payload)
        except struct.error:
            raise SketchError("truncated KLLSketch payload") from None
        if not MIN_KLL_K <= k <= MAX_KLL_K or num_levels > _MAX_LEVELS:
            raise SketchError(
                f"KLLSketch payload declares invalid k={k}, levels={num_levels}"
            )
        offset = 14
        levels: List[List[float]] = []
        try:
            for _ in range(num_levels):
                (count,) = struct.unpack_from(">I", payload, offset)
                offset += 4
                if count * 8 > len(payload) - offset:
                    raise SketchError("KLLSketch payload declares oversized level")
                levels.append(list(struct.unpack_from(f">{count}d", payload, offset)))
                offset += 8 * count
        except struct.error:
            raise SketchError("truncated KLLSketch payload") from None
        if offset != len(payload):
            raise SketchError("trailing bytes in KLLSketch payload")
        if not levels:
            levels = [[]]
        return cls(k, seed, levels, coin)

    # ------------------------------------------------------------------- dunder

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KLLSketch):
            return NotImplemented
        return (self.k == other.k and self.seed == other.seed
                and self.coin == other.coin and self.levels == other.levels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KLLSketch(k={self.k}, n={self.total_weight()}, "
                f"levels={len(self.levels)})")
