"""Mergeable sketches: fixed-size approximate aggregation partials.

Exact ``COUNT(DISTINCT)`` over millions of publishers ships every value to
the root of the aggregation tree; the sketches here replace those unbounded
partial states with fixed-size summaries that merge associatively, so they
flow through PIER's ``__pier_*`` soft-state partials and hierarchical
combiners unchanged:

* :class:`HyperLogLog` — distinct counting (``APPROX COUNT(DISTINCT x)``);
* :class:`TopKSketch` — count-min + candidate heap heavy hitters
  (``APPROX_TOP_K(x, k)``);
* :class:`KLLSketch` — quantiles (``APPROX_PERCENTILE(x, p)``).

All three share the seeded 64-bit :func:`hash64` so every node of a
deployment — simulated or real-TCP — computes identical register indexes,
and the :func:`sketch_to_bytes` / :func:`sketch_from_bytes` codec used both
by aggregate payloads and the wire layer's dedicated ext type.
"""

from repro.sketches.base import (
    DEFAULT_SEED,
    MAX_SKETCH_BYTES,
    SKETCH_TYPES,
    SketchBase,
    decode_value,
    encode_value,
    hash64,
    register_sketch,
    sketch_from_bytes,
    sketch_to_bytes,
)
from repro.sketches.hll import DEFAULT_LOG2M, HyperLogLog
from repro.sketches.kll import DEFAULT_KLL_K, KLLSketch
from repro.sketches.topk import DEFAULT_DEPTH, DEFAULT_K, DEFAULT_WIDTH, TopKSketch

__all__ = [
    "DEFAULT_DEPTH",
    "DEFAULT_K",
    "DEFAULT_KLL_K",
    "DEFAULT_LOG2M",
    "DEFAULT_SEED",
    "DEFAULT_WIDTH",
    "MAX_SKETCH_BYTES",
    "SKETCH_TYPES",
    "SketchBase",
    "HyperLogLog",
    "KLLSketch",
    "TopKSketch",
    "decode_value",
    "encode_value",
    "hash64",
    "register_sketch",
    "sketch_from_bytes",
    "sketch_to_bytes",
]
