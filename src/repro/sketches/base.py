"""Shared machinery of the mergeable-sketch subsystem.

Every sketch in :mod:`repro.sketches` is a *mergeable summary*: a fixed-size
partial state that supports ``add`` (absorb one value), ``merge`` (union
another partial of the same configuration), ``estimate`` (finalise) and a
compact binary serialisation (``to_payload`` / ``from_payload``).  Because
merge is order-insensitive, sketch partials flow through PIER's hierarchical
aggregation tree exactly like the exact aggregate states do — each combiner
merges what it received and forwards one partial of the *same bounded size*.

Two properties matter for a distributed deployment and are centralised here:

* **A seeded 64-bit hash shared across nodes.**  Python's builtin ``hash``
  is salted per process, so two nodes would disagree on every register
  index.  :func:`hash64` is a keyed blake2b over a canonical type-tagged
  encoding of the value, making estimates identical across the simulator
  and the real-TCP backend (and across processes) for the same input
  multiset.  Numeric values hash by *value* (``1`` and ``1.0`` collide on
  purpose, matching the engine's result-row canonicalisation); booleans are
  distinct from integers.
* **A bounded, reversible value encoding** used both by the hash and by
  sketches that must carry raw values (the top-k candidate heap).

Sketches cross the real-TCP wire as a dedicated msgpack ext type; the
:func:`sketch_to_bytes` / :func:`sketch_from_bytes` pair is the single
tag-dispatched codec both the wire layer and the aggregate payloads use.
Decoders validate declared dimensions *before* allocating, so a corrupt or
hostile payload cannot make a reader materialise gigabytes.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Dict, Type

from repro.exceptions import SketchError

#: Deployment-wide default hash seed.  Every node of one deployment must use
#: the same seed or register indexes (and therefore estimates) diverge.
DEFAULT_SEED = 0x5EED_C0DE

#: Hard ceiling on one serialised sketch.  Far above any legitimate
#: configuration (an HLL at the maximum ``log2m`` of 18 is 256 KiB); a
#: decoder must never allocate more than this from a length field.
MAX_SKETCH_BYTES = 1 << 20


def _hash_input(value: Any) -> bytes:
    """Canonical bytes of ``value`` for hashing (numerics unified by value)."""
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    return encode_value(value)


def hash64(value: Any, seed: int = DEFAULT_SEED) -> int:
    """Seeded 64-bit hash, identical on every node and backend."""
    digest = hashlib.blake2b(
        _hash_input(value), digest_size=8,
        key=(seed & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big"),
    ).digest()
    return int.from_bytes(digest, "big")


# ------------------------------------------------------ value (de)serialising


def encode_value(value: Any) -> bytes:
    """Reversible type-tagged encoding of one scalar value."""
    if value is None:
        return b"n"
    if value is True:
        return b"t"
    if value is False:
        return b"u"
    if isinstance(value, int):
        return b"i" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"f" + struct.pack(">d", value)
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, (bytes, bytearray)):
        return b"b" + bytes(value)
    raise SketchError(f"value of type {type(value).__name__} cannot be sketched")


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`."""
    if not data:
        raise SketchError("empty value encoding")
    tag, body = data[:1], data[1:]
    if tag == b"n":
        return None
    if tag == b"t":
        return True
    if tag == b"u":
        return False
    if tag == b"i":
        return int(body.decode("ascii"))
    if tag == b"f":
        return struct.unpack(">d", body)[0]
    if tag == b"s":
        return body.decode("utf-8")
    if tag == b"b":
        return bytes(body)
    raise SketchError(f"unknown value-encoding tag {tag!r}")


# ----------------------------------------------------------------- base class


class SketchBase:
    """Common protocol of every mergeable sketch.

    Subclasses implement ``add`` / ``merge`` / ``estimate`` and the binary
    codec, and declare a unique :attr:`WIRE_TAG` so one tag-dispatched codec
    serves both aggregate payloads and the wire ext type.
    """

    #: One-byte type tag inside the serialised form (unique per subclass).
    WIRE_TAG = 0

    def add(self, value: Any) -> None:
        """Absorb one input value."""
        raise NotImplementedError

    def merge(self, other: "SketchBase") -> None:
        """Union another sketch of the same configuration into this one."""
        raise NotImplementedError

    def estimate(self) -> Any:
        """Finalise the summary into an estimate."""
        raise NotImplementedError

    def to_payload(self) -> bytes:
        """Compact binary form (without the type tag)."""
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: bytes) -> "SketchBase":
        """Rebuild from :meth:`to_payload` output."""
        raise NotImplementedError

    def payload_bound(self) -> int:
        """Current serialised size in bytes (the fixed-size-bound witness)."""
        return len(self.to_payload())

    def _require_compatible(self, other: "SketchBase", *fields: str) -> None:
        if type(other) is not type(self):
            raise SketchError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        for name in fields:
            if getattr(self, name) != getattr(other, name):
                raise SketchError(
                    f"cannot merge {type(self).__name__} sketches with different "
                    f"{name} ({getattr(self, name)!r} != {getattr(other, name)!r})"
                )


#: WIRE_TAG -> sketch class, filled in by :func:`register_sketch`.
SKETCH_TYPES: Dict[int, Type[SketchBase]] = {}


def register_sketch(cls: Type[SketchBase]) -> Type[SketchBase]:
    """Class decorator adding a sketch type to the codec registry."""
    tag = cls.WIRE_TAG
    if not 1 <= tag <= 255:
        raise SketchError(f"{cls.__name__}.WIRE_TAG must be in 1..255")
    existing = SKETCH_TYPES.get(tag)
    if existing is not None and existing is not cls:
        raise SketchError(f"wire tag {tag} already taken by {existing.__name__}")
    SKETCH_TYPES[tag] = cls
    return cls


def sketch_to_bytes(sketch: SketchBase) -> bytes:
    """Serialise any registered sketch: 1 tag byte + its payload."""
    cls = type(sketch)
    if SKETCH_TYPES.get(cls.WIRE_TAG) is not cls:
        raise SketchError(f"unregistered sketch type {cls.__name__}")
    data = bytes([cls.WIRE_TAG]) + sketch.to_payload()
    if len(data) > MAX_SKETCH_BYTES:
        raise SketchError(
            f"serialised {cls.__name__} of {len(data)} bytes exceeds "
            f"{MAX_SKETCH_BYTES}"
        )
    return data


def sketch_from_bytes(data: bytes) -> SketchBase:
    """Rebuild a sketch from :func:`sketch_to_bytes` output."""
    if not data:
        raise SketchError("empty sketch payload")
    if len(data) > MAX_SKETCH_BYTES:
        raise SketchError(
            f"sketch payload of {len(data)} bytes exceeds {MAX_SKETCH_BYTES}"
        )
    cls = SKETCH_TYPES.get(data[0])
    if cls is None:
        raise SketchError(f"unknown sketch wire tag {data[0]}")
    return cls.from_payload(data[1:])
