"""Count-min sketch + candidate heap: heavy hitters (``APPROX_TOP_K(x, k)``).

A ``depth × width`` grid of counters, each row indexed by an independently
seeded :func:`repro.sketches.hash64`; a value's frequency estimate is the
minimum of its ``depth`` counters (over-estimates only, never under).  The
counter grid merges by entry-wise addition, so the merged grid is exactly
the grid of the concatenated stream — like the HLL registers, it is
independent of merge order.

Count-min alone answers point queries; to *enumerate* the heavy hitters each
sketch also carries a bounded candidate set (the classic "heap" companion):
every added value is remembered with its current estimate, and when the set
overflows its fixed capacity (``max(32, 4k)``) the smallest candidates are
evicted.  ``merge`` unions the candidate sets and re-scores every candidate
against the merged grid, so a value that is locally light but globally heavy
survives as long as *some* partial kept it.  Ties break on the canonical
value encoding, keeping results deterministic across nodes and backends.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import SketchError
from repro.sketches.base import (
    DEFAULT_SEED,
    SketchBase,
    decode_value,
    encode_value,
    hash64,
    register_sketch,
)

DEFAULT_K = 10
DEFAULT_WIDTH = 512
DEFAULT_DEPTH = 4
MAX_WIDTH = 1 << 16
MAX_DEPTH = 16
#: Row-seed spacing (a 64-bit odd constant, splitmix64's increment).
_ROW_SEED_STEP = 0x9E3779B97F4A7C15


@register_sketch
class TopKSketch(SketchBase):
    """Mergeable heavy-hitter sketch: count-min grid + bounded candidates."""

    WIRE_TAG = 2

    __slots__ = ("k", "width", "depth", "seed", "rows", "candidates")

    def __init__(self, k: int = DEFAULT_K, width: int = DEFAULT_WIDTH,
                 depth: int = DEFAULT_DEPTH, seed: int = DEFAULT_SEED,
                 rows: Optional[List[List[int]]] = None,
                 candidates: Optional[Dict[Any, int]] = None):
        k, width, depth = int(k), int(width), int(depth)
        if k <= 0:
            raise SketchError(f"top-k needs k >= 1, got {k}")
        if not 1 <= width <= MAX_WIDTH or not 1 <= depth <= MAX_DEPTH:
            raise SketchError(
                f"count-min dimensions out of range: width={width}, depth={depth}"
            )
        self.k = k
        self.width = width
        self.depth = depth
        self.seed = int(seed)
        if rows is None:
            rows = [[0] * width for _ in range(depth)]
        self.rows = rows
        self.candidates = dict(candidates or {})

    @property
    def capacity(self) -> int:
        """Fixed bound on the candidate set (independent of stream length)."""
        return max(32, 4 * self.k)

    # ------------------------------------------------------------------ algebra

    def _row_seed(self, row: int) -> int:
        return (self.seed + (row + 1) * _ROW_SEED_STEP) & 0xFFFFFFFFFFFFFFFF

    def add(self, value: Any, count: int = 1) -> None:
        if count <= 0:
            return
        estimate: Optional[int] = None
        for row in range(self.depth):
            index = hash64(value, self._row_seed(row)) % self.width
            counters = self.rows[row]
            counters[index] += count
            if estimate is None or counters[index] < estimate:
                estimate = counters[index]
        assert estimate is not None  # depth >= 1 always sets it
        self.candidates[value] = estimate
        self._trim()

    def point(self, value: Any) -> int:
        """Frequency estimate of one value (an upper bound on the truth)."""
        estimate: Optional[int] = None
        for row in range(self.depth):
            index = hash64(value, self._row_seed(row)) % self.width
            count = self.rows[row][index]
            if estimate is None or count < estimate:
                estimate = count
        return estimate or 0

    def merge(self, other: SketchBase) -> None:
        self._require_compatible(other, "k", "width", "depth", "seed")
        assert isinstance(other, TopKSketch)  # guaranteed by the check above
        for mine, theirs in zip(self.rows, other.rows):
            for index, count in enumerate(theirs):
                if count:
                    mine[index] += count
        # Union the candidate sets and re-score against the merged grid.
        union = set(self.candidates) | set(other.candidates)
        self.candidates = {value: self.point(value) for value in union}
        self._trim()

    def _trim(self) -> None:
        capacity = self.capacity
        if len(self.candidates) <= capacity:
            return
        ordered = sorted(
            self.candidates.items(),
            key=lambda item: (-item[1], encode_value(item[0])),
        )
        self.candidates = dict(ordered[:capacity])

    def estimate(self) -> List[Tuple[Any, int]]:
        """The ``k`` heaviest candidates as ``(value, count)`` pairs."""
        ordered = sorted(
            self.candidates.items(),
            key=lambda item: (-item[1], encode_value(item[0])),
        )
        return [(value, count) for value, count in ordered[:self.k]]

    # -------------------------------------------------------------------- codec

    def to_payload(self) -> bytes:
        parts = [struct.pack(">IHHQ", self.k, self.width, self.depth, self.seed)]
        for counters in self.rows:
            parts.append(struct.pack(f">{self.width}Q", *counters))
        parts.append(struct.pack(">H", len(self.candidates)))
        for value, count in self.candidates.items():
            encoded = encode_value(value)
            parts.append(struct.pack(">HQ", len(encoded), count))
            parts.append(encoded)
        return b"".join(parts)

    @classmethod
    def from_payload(cls, payload: bytes) -> "TopKSketch":
        try:
            k, width, depth, seed = struct.unpack_from(">IHHQ", payload)
        except struct.error:
            raise SketchError("truncated TopKSketch payload") from None
        if not 1 <= width <= MAX_WIDTH or not 1 <= depth <= MAX_DEPTH or k <= 0:
            raise SketchError(
                f"TopKSketch payload declares invalid dimensions "
                f"k={k}, width={width}, depth={depth}"
            )
        offset = 16
        rows: List[List[int]] = []
        try:
            for _ in range(depth):
                rows.append(list(struct.unpack_from(f">{width}Q", payload, offset)))
                offset += 8 * width
            (count,) = struct.unpack_from(">H", payload, offset)
            offset += 2
            candidates: Dict[Any, int] = {}
            for _ in range(count):
                length, estimate = struct.unpack_from(">HQ", payload, offset)
                offset += 10
                encoded = payload[offset:offset + length]
                if len(encoded) != length:
                    raise SketchError("truncated TopKSketch candidate")
                offset += length
                candidates[decode_value(encoded)] = estimate
        except struct.error:
            raise SketchError("truncated TopKSketch payload") from None
        if offset != len(payload):
            raise SketchError("trailing bytes in TopKSketch payload")
        return cls(k, width, depth, seed, rows, candidates)

    # ------------------------------------------------------------------- dunder

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopKSketch):
            return NotImplemented
        return (self.k == other.k and self.width == other.width
                and self.depth == other.depth and self.seed == other.seed
                and self.rows == other.rows
                and self.candidates == other.candidates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TopKSketch(k={self.k}, width={self.width}, "
                f"depth={self.depth}, candidates={len(self.candidates)})")
