"""HyperLogLog: fixed-size distinct counting (``APPROX COUNT(DISTINCT x)``).

The classic Flajolet et al. estimator: ``m = 2**log2m`` one-byte registers,
each holding the maximum leading-zero rank observed among the hashed values
routed to it.  Union is a register-wise ``max``, which is exactly
commutative, associative and idempotent — merging N nodes' sketches yields
*bit-identical* registers to a single sketch over the concatenated stream,
so the estimate is independent of tree shape, merge order and transport.

Standard error is ``1.04 / sqrt(m)`` — about 1.6 % at the default
``log2m = 12`` (4 KiB of registers), comfortably inside the 2 % target the
acceptance gate checks at 10^5 distinct values.  Small cardinalities use
linear counting over the number of untouched registers, which is near-exact
when the register file is mostly empty.
"""

from __future__ import annotations

import math
import struct
from typing import Any, Optional

from repro.exceptions import SketchError
from repro.sketches.base import (
    DEFAULT_SEED,
    SketchBase,
    hash64,
    register_sketch,
)

#: Default register-count exponent: 4096 registers, ~1.6 % standard error.
DEFAULT_LOG2M = 12
MIN_LOG2M = 4
MAX_LOG2M = 18


def _alpha(m: int) -> float:
    if m >= 128:
        return 0.7213 / (1.0 + 1.079 / m)
    if m >= 64:
        return 0.709
    if m >= 32:
        return 0.697
    return 0.673


@register_sketch
class HyperLogLog(SketchBase):
    """Mergeable distinct-count sketch with a fixed register file."""

    WIRE_TAG = 1

    __slots__ = ("log2m", "seed", "registers")

    def __init__(self, log2m: int = DEFAULT_LOG2M, seed: int = DEFAULT_SEED,
                 registers: Optional[bytearray] = None):
        log2m = int(log2m)
        if not MIN_LOG2M <= log2m <= MAX_LOG2M:
            raise SketchError(
                f"log2m must be in {MIN_LOG2M}..{MAX_LOG2M}, got {log2m}"
            )
        self.log2m = log2m
        self.seed = int(seed)
        m = 1 << log2m
        if registers is None:
            registers = bytearray(m)
        elif len(registers) != m:
            raise SketchError(
                f"register file of {len(registers)} bytes does not match "
                f"log2m={log2m}"
            )
        self.registers = bytearray(registers)

    # ------------------------------------------------------------------ algebra

    def add(self, value: Any) -> None:
        self.add_hash(hash64(value, self.seed))

    def add_hash(self, hashed: int) -> None:
        """Absorb a pre-computed :func:`repro.sketches.hash64` value."""
        shift = 64 - self.log2m
        index = hashed >> shift
        tail = hashed & ((1 << shift) - 1)
        rank = shift - tail.bit_length() + 1
        if self.registers[index] < rank:
            self.registers[index] = rank

    def merge(self, other: SketchBase) -> None:
        self._require_compatible(other, "log2m", "seed")
        assert isinstance(other, HyperLogLog)  # guaranteed by the check above
        mine = self.registers
        theirs = other.registers
        for index, rank in enumerate(theirs):
            if mine[index] < rank:
                mine[index] = rank

    def estimate(self) -> float:
        m = 1 << self.log2m
        total = 0.0
        zeros = 0
        for rank in self.registers:
            total += 2.0 ** -rank
            if rank == 0:
                zeros += 1
        raw = _alpha(m) * m * m / total
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)  # linear counting (small range)
        return raw

    def copy(self) -> "HyperLogLog":
        return HyperLogLog(self.log2m, self.seed, bytearray(self.registers))

    # -------------------------------------------------------------------- codec

    def to_payload(self) -> bytes:
        return struct.pack(">BQ", self.log2m, self.seed) + bytes(self.registers)

    @classmethod
    def from_payload(cls, payload: bytes) -> "HyperLogLog":
        if len(payload) < 9:
            raise SketchError("truncated HyperLogLog payload")
        log2m, seed = struct.unpack_from(">BQ", payload)
        if not MIN_LOG2M <= log2m <= MAX_LOG2M:
            raise SketchError(f"HyperLogLog payload declares invalid log2m={log2m}")
        registers = payload[9:]
        if len(registers) != 1 << log2m:
            raise SketchError(
                f"HyperLogLog payload of {len(registers)} registers does not "
                f"match log2m={log2m}"
            )
        return cls(log2m, seed, bytearray(registers))

    def payload_bound(self) -> int:
        return 9 + (1 << self.log2m)

    # ------------------------------------------------------------------- dunder

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HyperLogLog):
            return NotImplemented
        return (self.log2m == other.log2m and self.seed == other.seed
                and self.registers == other.registers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HyperLogLog(log2m={self.log2m}, "
                f"estimate~{self.estimate():.0f})")
