"""Boot and manage localhost subprocess clusters: :class:`LocalCluster`.

The real-transport tests and the churn benchmarks all need the same
scaffolding: spawn ``python -m repro.node`` processes on loopback ports,
wait for the overlay to assemble, map overlay addresses back onto ports and
processes, and then *perturb* the cluster — dynamic joins, graceful
leaves, and ``kill -9`` mid-query.  This module is that scaffolding, kept
in the library (not the test tree) so benchmarks, tests and demos share
one implementation.

The address↔process map matters because joiners are assigned overlay
addresses in *arrival* order, which is nondeterministic across process
startup: after boot the cluster asks every port for its ``status`` to
learn which process ended up with which address, and :meth:`kill` /
:meth:`local_scan_count` operate on addresses from then on.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from typing import Dict, List, Optional

from repro.exceptions import NetworkError
from repro.remote import GatewayConnection, RemotePier

#: How long a cluster may take to assemble before boot fails.
BOOT_DEADLINE_S = 60.0

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def free_ports(count: int) -> List[int]:
    """Reserve ``count`` distinct free loopback ports (best effort)."""
    sockets = [socket.socket() for _ in range(count)]
    try:
        for sock in sockets:
            sock.bind(("127.0.0.1", 0))
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class LocalCluster:
    """A killable localhost cluster of ``python -m repro.node`` processes.

    Parameters mirror the node CLI; the heartbeat/suspicion/request-timeout
    knobs exist so churn tests can compress the paper's 15 s detection
    delay into CI-friendly wall clock (see ``benchmarks/bench_real_churn``
    for the exact simulator↔real mapping).
    """

    def __init__(self, num_nodes: int, dht: str = "can", seed: int = 0,
                 sweep_period_s: float = 2.0,
                 heartbeat_period_s: Optional[float] = None,
                 suspicion_timeout_s: Optional[float] = None,
                 request_timeout_s: Optional[float] = None,
                 capture_logs: bool = False):
        self.dht = dht
        self.num_nodes = num_nodes
        self.ports: List[int] = free_ports(num_nodes)
        self.processes: List[subprocess.Popen] = []
        self.pier: Optional[RemotePier] = None
        #: overlay address -> loopback port / process, resolved after boot.
        self.port_of: Dict[int, int] = {}
        self.proc_of: Dict[int, subprocess.Popen] = {}
        self.killed: set = set()
        self._capture = subprocess.PIPE if capture_logs else subprocess.DEVNULL
        self._env = dict(os.environ)
        self._env["PYTHONPATH"] = (_SRC_DIR + os.pathsep
                                   + self._env.get("PYTHONPATH", ""))
        self._common = [sys.executable, "-m", "repro.node",
                        "--sweep-period", str(sweep_period_s)]
        if heartbeat_period_s is not None:
            self._common += ["--heartbeat-period", str(heartbeat_period_s)]
        if suspicion_timeout_s is not None:
            self._common += ["--suspicion-timeout", str(suspicion_timeout_s)]
        if request_timeout_s is not None:
            self._common += ["--request-timeout", str(request_timeout_s)]
        self._spawn(self._common
                    + ["--listen", f"127.0.0.1:{self.ports[0]}",
                       "--nodes", str(num_nodes),
                       "--dht", dht, "--seed", str(seed)])
        for port in self.ports[1:]:
            self._spawn(self._common
                        + ["--listen", f"127.0.0.1:{port}",
                           "--join", f"127.0.0.1:{self.ports[0]}"])

    def _spawn(self, argv: List[str]) -> subprocess.Popen:
        proc = subprocess.Popen(argv, env=self._env,
                                stdout=subprocess.DEVNULL,
                                stderr=self._capture)
        self.processes.append(proc)
        return proc

    # -------------------------------------------------------------- lifecycle

    def connect(self, deadline_s: float = BOOT_DEADLINE_S) -> RemotePier:
        """Wait for the overlay to assemble; open the client session."""
        deadline = time.monotonic() + deadline_s
        while True:
            try:
                self.pier = RemotePier.connect("127.0.0.1", self.ports[0])
                break
            except (OSError, NetworkError):
                if any(proc.poll() is not None for proc in self.processes):
                    self.stop()
                    raise RuntimeError("a node process died during boot") from None
                if time.monotonic() >= deadline:
                    self.stop()
                    raise RuntimeError("cluster did not become ready in time") from None
                time.sleep(0.3)
        self._resolve_addresses()
        return self.pier

    def _resolve_addresses(self) -> None:
        """Learn which process/port holds which overlay address."""
        for port, proc in zip(self.ports, self.processes):
            address = self._address_of_port(port)
            if address is None:
                continue
            self.port_of[address] = port
            self.proc_of[address] = proc

    def _address_of_port(self, port: int,
                         deadline_s: float = BOOT_DEADLINE_S) -> Optional[int]:
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            try:
                conn = GatewayConnection("127.0.0.1", port, timeout_s=2.0)
            except OSError:
                time.sleep(0.2)
                continue
            try:
                status = conn.rpc("status", timeout_s=2.0)
                if status.get("ready"):
                    return int(status["address"])
            except (NetworkError, OSError):
                pass
            finally:
                conn.close()
            time.sleep(0.2)
        return None

    # ------------------------------------------------------------------ churn

    def kill(self, address: int) -> None:
        """``kill -9`` the process holding ``address`` (no goodbye frames)."""
        proc = self.proc_of[address]
        proc.kill()
        proc.wait()
        self.killed.add(address)

    def add_node(self, via: Optional[int] = None,
                 deadline_s: float = BOOT_DEADLINE_S) -> int:
        """Dynamically join a fresh node through a live member.

        Returns the new node's overlay address once its stack has
        assembled and the cluster has committed the join.  The caller's
        :class:`RemotePier` should ``refresh_membership()`` afterwards.
        """
        member_port = self.port_of.get(
            via if via is not None else self._any_live_address())
        (port,) = free_ports(1)
        proc = self._spawn(self._common
                           + ["--listen", f"127.0.0.1:{port}",
                              "--join", f"127.0.0.1:{member_port}"])
        address = self._address_of_port(port, deadline_s=deadline_s)
        if address is None:
            raise RuntimeError("dynamic joiner did not become ready in time")
        self.ports.append(port)
        self.port_of[address] = port
        self.proc_of[address] = proc
        return address

    def _any_live_address(self) -> int:
        for address in sorted(self.port_of):
            if address not in self.killed:
                return address
        raise RuntimeError("no live node left in the cluster")

    # ------------------------------------------------------------ diagnostics

    def local_scan_count(self, address: int, namespace: str) -> int:
        """Item count of ``namespace`` stored *locally* at one member."""
        conn = GatewayConnection("127.0.0.1", self.port_of[address],
                                 timeout_s=5.0)
        try:
            return conn.rpc("scan_count", namespace=namespace)["count"]
        finally:
            conn.close()

    def live_addresses(self) -> List[int]:
        return [a for a in sorted(self.port_of) if a not in self.killed]

    # --------------------------------------------------------------- teardown

    def stop(self) -> None:
        if self.pier is not None:
            try:
                self.pier.shutdown_cluster()
            except (NetworkError, OSError):
                pass
            self.pier.close()
            self.pier = None
        for proc in self.processes:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.processes:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def __enter__(self) -> "LocalCluster":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


__all__ = ["BOOT_DEADLINE_S", "LocalCluster", "free_ports"]
