"""Soft-state / recall experiment (paper Section 5.6, Figure 6).

The paper fails nodes at a configurable rate while tuples are kept alive by
periodic renewal, and reports *average recall* — the fraction of the
reachable-snapshot answer the query actually returns — as a function of the
failure rate for several refresh periods.  This module wires together the
failure injector, renewal agents and the query workload, runs a sequence of
queries during steady-state churn, and averages their recall.

The failure model follows the paper (and DESIGN.md): a failed node loses all
stored soft state immediately, is unreachable until the 15 s keep-alive
timeout, after which routing heals around it and the identity resumes empty;
lost tuples reappear when their publishers next renew them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.harness.experiment import PierNetwork
from repro.metrics.recall import recall as compute_recall
from repro.net.failures import DEFAULT_DETECTION_DELAY_S, FailureInjector
from repro.workloads.generator import JoinWorkload


@dataclass
class SoftStateResult:
    """Outcome of one soft-state experiment configuration."""

    failure_rate_per_min: float
    refresh_period_s: float
    recalls: List[float] = field(default_factory=list)

    @property
    def average_recall(self) -> float:
        """Mean recall over all measured queries (1.0 if none ran)."""
        if not self.recalls:
            return 1.0
        return sum(self.recalls) / len(self.recalls)

    @property
    def average_recall_percent(self) -> float:
        """Mean recall as a percentage (the paper's Figure 6 y-axis)."""
        return 100.0 * self.average_recall


def _wire_failures(pier: PierNetwork, failure_rate_per_min: float,
                   detection_delay_s: float, seed: int,
                   protect: frozenset) -> FailureInjector:
    """Create a failure injector whose callbacks keep DHT state consistent."""

    def _on_fail(address: int) -> None:
        pier.providers[address].handle_node_failure()

    def _on_detect(address: int) -> None:
        for routing in pier.routings.values():
            if hasattr(routing, "mark_neighbor_dead"):
                routing.mark_neighbor_dead(address)

    def _on_recover(address: int) -> None:
        for routing in pier.routings.values():
            if hasattr(routing, "mark_neighbor_alive"):
                routing.mark_neighbor_alive(address)

    return FailureInjector(
        network=pier.network,
        failures_per_minute=failure_rate_per_min,
        detection_delay_s=detection_delay_s,
        seed=seed,
        on_fail=_on_fail,
        on_detect=_on_detect,
        on_recover=_on_recover,
        protect=protect,
    )


def run_soft_state_experiment(
    pier: PierNetwork,
    workload: JoinWorkload,
    refresh_period_s: float,
    failure_rate_per_min: float,
    num_queries: int = 3,
    query_interval_s: float = 60.0,
    warmup_s: float = 30.0,
    query_horizon_s: float = 45.0,
    detection_delay_s: float = DEFAULT_DETECTION_DELAY_S,
    initiator: int = 0,
    seed: int = 0,
) -> SoftStateResult:
    """Measure average recall under churn for one (rate, refresh) setting.

    The workload tables must *not* have been loaded yet: this function starts
    the renewal agents, loads the tables with renewal tracking, begins
    failure injection, and then submits ``num_queries`` instances of the
    benchmark query spaced ``query_interval_s`` apart, comparing each
    answer against the reachable-snapshot golden result at submission time.
    """
    pier.start_renewal_agents(refresh_period_s)
    lifetime = refresh_period_s * 2.0
    pier.load_relation(workload.r_relation, workload.r_by_node,
                       lifetime=lifetime, fast=True, track_renewal=True)
    pier.load_relation(workload.s_relation, workload.s_by_node,
                       lifetime=lifetime, fast=True, track_renewal=True)

    injector = _wire_failures(
        pier, failure_rate_per_min, detection_delay_s, seed,
        protect=frozenset({initiator}),
    )
    injector.start()
    pier.run(until=pier.now + warmup_s)

    result = SoftStateResult(
        failure_rate_per_min=failure_rate_per_min,
        refresh_period_s=refresh_period_s,
    )
    for _query_index in range(num_queries):
        live = set(pier.network.live_addresses())
        expected = workload.expected_results(live_publishers=live)
        query = workload.make_query()
        handle = pier.executor(initiator).submit(query)
        pier.run(until=pier.now + query_horizon_s)
        result.recalls.append(compute_recall(handle.rows, expected))
        remaining = max(0.0, query_interval_s - query_horizon_s)
        if remaining:
            pier.run(until=pier.now + remaining)

    injector.stop()
    return result
