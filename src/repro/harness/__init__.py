"""Experiment harness: simulated PIER deployments and the paper's experiments."""

from repro.harness.experiment import (
    ChurnConfig,
    PierNetwork,
    QueryRunResult,
    SimulationConfig,
    run_query,
)
from repro.harness.overlay import OwnerLocator, build_local_routing
from repro.harness.softstate import SoftStateResult, run_soft_state_experiment
from repro.harness import analytical
from repro.harness.reporting import format_table, format_series

__all__ = [
    "ChurnConfig",
    "SimulationConfig",
    "PierNetwork",
    "QueryRunResult",
    "run_query",
    "run_soft_state_experiment",
    "SoftStateResult",
    "OwnerLocator",
    "build_local_routing",
    "analytical",
    "format_table",
    "format_series",
]
