"""Plain-text report formatting for the benchmark harness.

Every benchmark prints the rows or series of the table/figure it reproduces;
these helpers keep that output consistent and readable in ``pytest -s`` /
benchmark logs and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(title: str, rows: Sequence[Dict], columns: Sequence[str] = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    rows = list(rows)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    widths = {column: len(str(column)) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [_format_value(row.get(column)) for column in columns]
        rendered_rows.append(rendered)
        for column, cell in zip(columns, rendered):
            widths[column] = max(widths[column], len(cell))
    lines = [title]
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[column] for column in columns))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[column])
                               for column, cell in zip(columns, rendered)))
    return "\n".join(lines)


def format_series(title: str, x_label: str, y_label: str,
                  points: Iterable) -> str:
    """Render an (x, y) series as a two-column table (one figure curve)."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(title, rows, columns=[x_label, y_label])
