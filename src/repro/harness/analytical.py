"""Closed-form models from the paper's Sections 3.1.1, 5.3 and 5.5.1.

The paper backs several of its measurements with back-of-the-envelope
analysis; implementing the same formulas lets the benchmarks print
paper-analysis vs. simulation side by side and lets the tests cross-check the
simulator against the theory:

* CAN lookups take ``(d/4)·n^{1/d}`` overlay hops on average (Section 3.1.1),
  so lookup latency is that times the per-hop delay.
* A single computation node in an ``n``-node network must receive
  ``D·(n-m)/(n·m)`` bytes of selected data on average, where ``D`` is the
  data passing the selections and ``m`` the number of computation nodes
  (Section 5.3); the required downlink bandwidth follows from the desired
  response time.
* Each join strategy's infinite-bandwidth completion time decomposes into a
  multicast, a number of CAN lookups, and a number of direct IP hops
  (Section 5.5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Paper baseline per-hop (pairwise) latency in the full-mesh topology.
DEFAULT_HOP_LATENCY_S = 0.100


def can_average_hops(num_nodes: int, dimensions: int = 2) -> float:
    """Average CAN routing path length: ``(d/4) · n^{1/d}`` hops."""
    if num_nodes <= 1:
        return 0.0
    return (dimensions / 4.0) * num_nodes ** (1.0 / dimensions)


def chord_average_hops(num_nodes: int) -> float:
    """Average Chord routing path length: ``(1/2) · log2 n`` hops."""
    if num_nodes <= 1:
        return 0.0
    import math

    return 0.5 * math.log2(num_nodes)


def lookup_latency(num_nodes: int, dimensions: int = 2,
                   hop_latency_s: float = DEFAULT_HOP_LATENCY_S) -> float:
    """Average CAN lookup latency in seconds."""
    return can_average_hops(num_nodes, dimensions) * hop_latency_s


def multicast_depth(num_nodes: int, dimensions: int = 2) -> float:
    """Approximate depth of the neighbour-flood multicast tree (overlay diameter).

    For CAN the diameter is ``(d/2)·n^{1/d}`` hops; the paper reports the
    multicast taking roughly 3 s to reach 1024 nodes at 100 ms per hop, which
    this approximation matches to within a small constant.
    """
    if num_nodes <= 1:
        return 0.0
    return (dimensions / 2.0) * num_nodes ** (1.0 / dimensions)


def multicast_latency(num_nodes: int, dimensions: int = 2,
                      hop_latency_s: float = DEFAULT_HOP_LATENCY_S) -> float:
    """Approximate time for a multicast to reach every node."""
    return multicast_depth(num_nodes, dimensions) * hop_latency_s


# ---------------------------------------------------------------------------
# Section 5.3: centralised vs. distributed provisioning


def selected_data_bytes(total_bytes: float, selectivity: float) -> float:
    """Bytes of base data passing the selection predicates (the paper's D)."""
    return total_bytes * selectivity


def inbound_bytes_per_computation_node(selected_bytes: float, num_nodes: int,
                                       computation_nodes: int) -> float:
    """Average bytes each computation node must receive over the network.

    ``D/m`` of the selected data lands on each of the ``m`` computation
    nodes, of which a fraction ``m/n`` is expected to already be local; hence
    the ``(n - m) / n`` factor.
    """
    if computation_nodes <= 0:
        raise ValueError("need at least one computation node")
    if num_nodes <= 0:
        raise ValueError("need at least one node")
    local_fraction = min(1.0, computation_nodes / num_nodes)
    return (selected_bytes / computation_nodes) * (1.0 - local_fraction)


def required_downlink_mbps(selected_bytes: float, num_nodes: int,
                           computation_nodes: int, response_time_s: float) -> float:
    """Downlink bandwidth (Mbps) a computation node needs to answer in time."""
    if response_time_s <= 0:
        raise ValueError("response time must be positive")
    per_node = inbound_bytes_per_computation_node(
        selected_bytes, num_nodes, computation_nodes
    )
    return per_node * 8.0 / response_time_s / 1_000_000


# ---------------------------------------------------------------------------
# Section 5.5.1: infinite-bandwidth strategy decomposition


@dataclass(frozen=True)
class StrategyCostModel:
    """Message-pattern decomposition of one join strategy.

    ``multicasts`` counts namespace-wide disseminations, ``lookups`` counts
    CAN lookups on the critical path, ``directs`` counts direct IP hops on
    the critical path (including final result delivery).
    """

    name: str
    multicasts: int
    lookups: int
    directs: int

    def completion_time(self, num_nodes: int, dimensions: int = 2,
                        hop_latency_s: float = DEFAULT_HOP_LATENCY_S) -> float:
        """Predicted time to the last result tuple with unlimited bandwidth."""
        return (
            self.multicasts * multicast_latency(num_nodes, dimensions, hop_latency_s)
            + self.lookups * lookup_latency(num_nodes, dimensions, hop_latency_s)
            + self.directs * hop_latency_s
        )


#: The per-strategy decompositions given in Section 5.5.1.
STRATEGY_COST_MODELS: Dict[str, StrategyCostModel] = {
    "symmetric_hash": StrategyCostModel("symmetric_hash", multicasts=1, lookups=1, directs=2),
    "fetch_matches": StrategyCostModel("fetch_matches", multicasts=1, lookups=1, directs=3),
    "symmetric_semi_join": StrategyCostModel("symmetric_semi_join", multicasts=1, lookups=2, directs=4),
    "bloom": StrategyCostModel("bloom", multicasts=2, lookups=2, directs=3),
}


def predicted_strategy_times(num_nodes: int, dimensions: int = 2,
                             hop_latency_s: float = DEFAULT_HOP_LATENCY_S
                             ) -> Dict[str, float]:
    """Predicted time-to-last-tuple for all four strategies (paper Table 4)."""
    return {
        name: model.completion_time(num_nodes, dimensions, hop_latency_s)
        for name, model in STRATEGY_COST_MODELS.items()
    }


# ---------------------------------------------------------------------------
# Section 5.6: expected recall under churn


def expected_recall(failure_rate_per_min: float, refresh_period_s: float,
                    num_nodes: int) -> float:
    """The paper's back-of-the-envelope recall estimate.

    A fraction ``rate/n`` of nodes fails per minute; each lost tuple stays
    missing for half the refresh period on average, so the expected fraction
    of unavailable live tuples is ``(rate/n) · (refresh/2) / 60``.
    """
    if num_nodes <= 0:
        raise ValueError("need at least one node")
    unavailable = (failure_rate_per_min / num_nodes) * (refresh_period_s / 2.0) / 60.0
    return max(0.0, 1.0 - unavailable)
