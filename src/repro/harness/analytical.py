"""Closed-form models from the paper's Sections 3.1.1, 5.3 and 5.5.1.

The overlay-routing and join-strategy decompositions that used to live here
were promoted into the optimizer layer (:mod:`repro.core.costmodel`), where
they now drive ``strategy=AUTO`` planning as well as the benchmarks'
analysis columns.  This module re-exports them unchanged for back
compatibility, and keeps the harness-only provisioning (Section 5.3) and
churn-recall (Section 5.6) formulas:

* CAN lookups take ``(d/4)·n^{1/d}`` overlay hops on average (Section 3.1.1),
  so lookup latency is that times the per-hop delay.
* A single computation node in an ``n``-node network must receive
  ``D·(n-m)/(n·m)`` bytes of selected data on average, where ``D`` is the
  data passing the selections and ``m`` the number of computation nodes
  (Section 5.3); the required downlink bandwidth follows from the desired
  response time.
* Each join strategy's infinite-bandwidth completion time decomposes into a
  multicast, a number of CAN lookups, and a number of direct IP hops
  (Section 5.5.1).
"""

from __future__ import annotations

# Re-exported from the optimizer layer (moved there; kept importable here).
from repro.core.costmodel import (  # noqa: F401
    DEFAULT_HOP_LATENCY_S,
    STRATEGY_COST_MODELS,
    StrategyCostModel,
    can_average_hops,
    chord_average_hops,
    lookup_latency,
    multicast_depth,
    multicast_latency,
    predicted_strategy_times,
)

__all__ = [
    "DEFAULT_HOP_LATENCY_S",
    "can_average_hops",
    "chord_average_hops",
    "lookup_latency",
    "multicast_depth",
    "multicast_latency",
    "StrategyCostModel",
    "STRATEGY_COST_MODELS",
    "predicted_strategy_times",
    "selected_data_bytes",
    "inbound_bytes_per_computation_node",
    "required_downlink_mbps",
    "expected_recall",
]


# ---------------------------------------------------------------------------
# Section 5.3: centralised vs. distributed provisioning


def selected_data_bytes(total_bytes: float, selectivity: float) -> float:
    """Bytes of base data passing the selection predicates (the paper's D)."""
    return total_bytes * selectivity


def inbound_bytes_per_computation_node(selected_bytes: float, num_nodes: int,
                                       computation_nodes: int) -> float:
    """Average bytes each computation node must receive over the network.

    ``D/m`` of the selected data lands on each of the ``m`` computation
    nodes, of which a fraction ``m/n`` is expected to already be local; hence
    the ``(n - m) / n`` factor.
    """
    if computation_nodes <= 0:
        raise ValueError("need at least one computation node")
    if num_nodes <= 0:
        raise ValueError("need at least one node")
    local_fraction = min(1.0, computation_nodes / num_nodes)
    return (selected_bytes / computation_nodes) * (1.0 - local_fraction)


def required_downlink_mbps(selected_bytes: float, num_nodes: int,
                           computation_nodes: int, response_time_s: float) -> float:
    """Downlink bandwidth (Mbps) a computation node needs to answer in time."""
    if response_time_s <= 0:
        raise ValueError("response time must be positive")
    per_node = inbound_bytes_per_computation_node(
        selected_bytes, num_nodes, computation_nodes
    )
    return per_node * 8.0 / response_time_s / 1_000_000


# ---------------------------------------------------------------------------
# Section 5.6: expected recall under churn


def expected_recall(failure_rate_per_min: float, refresh_period_s: float,
                    num_nodes: int) -> float:
    """The paper's back-of-the-envelope recall estimate.

    A fraction ``rate/n`` of nodes fails per minute; each lost tuple stays
    missing for half the refresh period on average, so the expected fraction
    of unavailable live tuples is ``(rate/n) · (refresh/2) / 60``.
    """
    if num_nodes <= 0:
        raise ValueError("need at least one node")
    unavailable = (failure_rate_per_min / num_nodes) * (refresh_period_s / 2.0) / 60.0
    return max(0.0, 1.0 - unavailable)
