"""Deterministic overlay construction for real (multi-process) clusters.

Both network builders — :class:`repro.dht.can.CanNetworkBuilder` and
:class:`repro.dht.chord.ChordNetworkBuilder` — are message-free,
deterministic functions of the address list: given the same addresses (and
CAN dimensions/seed) every process computes bit-identical zones, neighbour
maps, rings and finger tables.  A real node therefore doesn't run a join
protocol at bootstrap; it builds the *entire* stabilised overlay locally
over throwaway stand-in nodes, keeps the one routing layer that is its own,
and rebinds it onto its socket-backed node
(:meth:`repro.dht.api.RoutingLayer.rebind`).  This mirrors how the
simulator harness starts measurements only after stabilisation — the paper
likewise measures "after the CAN routing stabilizes".

The same determinism powers *live* membership: when a node joins or
leaves, every member applies the new address list by re-running
``build_local_routing`` and rebinding, then migrates the stored items
whose ownership moved (see ``repro.node``).  No distributed stabilisation
protocol is needed — agreement on the address list (the membership epoch)
implies agreement on ownership.

:class:`OwnerLocator` exposes the same determinism to clients: given the
cluster's DHT parameters it maps any ``(namespace, resourceID)`` to the
owning address without touching the network, which is what lets a remote
loader place tuples directly at their owners ("fast load") exactly like
:meth:`repro.harness.experiment.PierNetwork.load_relation` does in-process.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.dht.api import RoutingLayer
from repro.dht.can import CanNetworkBuilder
from repro.dht.chord import ChordNetworkBuilder
from repro.dht.naming import hash_key
from repro.exceptions import ExperimentError
from repro.net.node import Node


class _StandInCluster:
    """The minimal network surface the builders consume (no transport)."""

    def __init__(self, addresses: Sequence[int]):
        self.nodes: Dict[int, Node] = {
            address: Node(address, None) for address in addresses
        }

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, address: int) -> Node:
        return self.nodes[address]


def make_builder(dht: str, can_dimensions: int = 2, seed: int = 0):
    """The network builder for a DHT name (same knobs as SimulationConfig)."""
    if dht == "can":
        return CanNetworkBuilder(dimensions=can_dimensions, seed=seed)
    if dht == "chord":
        return ChordNetworkBuilder()
    raise ExperimentError(f"unknown DHT {dht!r}; expected 'can' or 'chord'")


def build_local_routing(node: Node, addresses: Sequence[int], dht: str = "can",
                        can_dimensions: int = 2, seed: int = 0
                        ) -> Tuple[RoutingLayer, object]:
    """Build the full stabilised overlay locally; rebind this node's layer.

    Returns ``(routing, builder)`` — the routing layer now registered on
    ``node``, and the builder (whose ``owner_of_key`` serves local
    owner placement).  The other addresses' layers are built on stand-in
    nodes and discarded; only their *existence* mattered, since the
    builders compute each layer's tables from the whole address list.
    """
    addresses = sorted(int(a) for a in addresses)
    if node.address not in addresses:
        raise ExperimentError(
            f"node {node.address} is not in the cluster address list {addresses}"
        )
    stand_in = _StandInCluster(addresses)
    builder = make_builder(dht, can_dimensions=can_dimensions, seed=seed)
    routings = builder.build_stabilized(stand_in, addresses=addresses)
    routing = routings[node.address]
    routing.rebind(node)
    return routing, builder


class OwnerLocator:
    """Client-side ``(namespace, resourceID) → owner address`` resolution.

    Wraps a locally-built stabilised overlay over the cluster's address
    list; never sends a message.  Ownership is valid for one membership
    *epoch*: when nodes join or leave, every member deterministically
    rebuilds the overlay over the new address list, so a client must call
    :meth:`rebuild` (see :meth:`repro.remote.RemotePier.refresh_membership`)
    with the refreshed membership to keep placing tuples correctly.
    Crash failures do *not* remap ownership — the cluster routes around a
    dead node via bounces and detection, exactly like the simulator.
    """

    def __init__(self, addresses: Sequence[int], dht: str = "can",
                 can_dimensions: int = 2, seed: int = 0):
        self.dht = dht
        self.can_dimensions = can_dimensions
        self.seed = seed
        self.rebuild(addresses)

    def rebuild(self, addresses: Sequence[int]) -> None:
        """Recompute ownership over a new membership address list."""
        self.addresses = sorted(int(a) for a in addresses)
        stand_in = _StandInCluster(self.addresses)
        self.builder = make_builder(self.dht, can_dimensions=self.can_dimensions,
                                    seed=self.seed)
        self.builder.build_stabilized(stand_in, addresses=self.addresses)

    def owner_of_key(self, key: int) -> int:
        """Owning address of a flat DHT key."""
        return self.builder.owner_of_key(key)

    def owner_of(self, namespace: str, resource_id) -> int:
        """Owning address of ``(namespace, resourceID)``."""
        return self.builder.owner_of_key(hash_key(namespace, resource_id))


__all__ = ["OwnerLocator", "build_local_routing", "make_builder"]
