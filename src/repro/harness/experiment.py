"""Assembling simulated PIER deployments and running queries over them.

:class:`PierNetwork` builds the full stack the paper's evaluation uses: a
topology, the discrete-event network, a stabilised DHT (CAN by default,
Chord as the alternative), one Provider and one QueryExecutor per node.  It
can load workload tables either through real ``put`` traffic or with a "fast
load" that places items directly at their owners — the paper likewise starts
its measurements only "after the CAN routing stabilizes, and tables R and S
are loaded into the DHT".

:func:`run_query` submits a query from an initiator node, advances the
simulation, and returns the latency summary, traffic breakdown and result
rows for that query — the quantities every benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.executor import QueryExecutor, QueryHandle
from repro.core.query import QuerySpec
from repro.core.stats import (
    STATS_ITEM_BYTES,
    STATS_LIFETIME_S,
    STATS_NAMESPACE,
    RelationStats,
    StatsRegistry,
    relation_stats_resource_id,
)
from repro.core.tuples import RelationDef
from repro.dht.can import CanNetworkBuilder
from repro.dht.chord import ChordNetworkBuilder
from repro.dht.naming import hash_key
from repro.dht.provider import Provider
from repro.dht.softstate import RenewalAgent
from repro.dht.storage import StoredItem
from repro.exceptions import ExperimentError
from repro.metrics.latency import LatencySummary, summarize_latency
from repro.metrics.traffic import TrafficBreakdown, breakdown_traffic
from repro.net.cluster import ClusterTopology
from repro.net.failures import DEFAULT_DETECTION_DELAY_S, FailureInjector
from repro.net.network import Network
from repro.net.topology import FullMeshTopology, MBPS_10
from repro.net.transit_stub import TransitStubTopology

#: Topology names accepted by :class:`SimulationConfig`.
TOPOLOGIES = ("full_mesh", "transit_stub", "cluster")
#: DHT names accepted by :class:`SimulationConfig`.
DHTS = ("can", "chord")


@dataclass
class ChurnConfig:
    """Continuous node-failure injection alongside real query execution.

    Attaching one to :class:`SimulationConfig` makes the deployment
    failure-aware end to end: Providers run the per-request timeout/retry
    lanes, executors arm failure fallbacks and the periodic stale-state
    sweep, and a :class:`repro.net.failures.FailureInjector` (exposed as
    ``PierNetwork.failure_injector``) fails nodes at the configured rate
    while queries run — the setup of the paper's Figure 6 recall
    experiment, but through the real PierClient → opgraph → executor path.
    """

    #: Mean failure arrival rate; 0 wires everything up but injects nothing
    #: (tests drive ``failure_injector.fail_now`` by hand).
    failure_rate_per_min: float = 0.0
    #: Keep-alive detection delay (the paper assumes 15 s).
    detection_delay_s: float = DEFAULT_DETECTION_DELAY_S
    #: Downtime before the identity resumes empty (defaults to detection).
    downtime_s: Optional[float] = None
    seed: int = 0
    #: Addresses never chosen as victims (the query initiator site).
    protect: Tuple[int, ...] = (0,)
    #: Per-request get timeout; bounds waits that bounces cannot see.
    request_timeout_s: Optional[float] = 10.0
    #: Retries-after-reroute before a get completes empty.
    request_retries: int = 1
    #: Purge ``__pier_stats__`` partials of a failed publisher from live
    #: owners at detection time (instead of waiting for expiry).
    purge_dead_publisher_stats: bool = True
    #: Start injecting as soon as the deployment is built.
    auto_start: bool = True

    def __post_init__(self) -> None:
        if self.failure_rate_per_min < 0:
            raise ExperimentError("churn failure rate must be non-negative")


@dataclass
class SimulationConfig:
    """Configuration of one simulated PIER deployment.

    The defaults reproduce the paper's baseline setup: a fully connected
    topology with 100 ms pairwise latency and 10 Mbps inbound links, and a
    2-dimensional CAN.  ``bandwidth_bytes_per_s=None`` selects the
    infinite-bandwidth (latency-only) scenario of Section 5.5.1.
    """

    num_nodes: int
    topology: str = "full_mesh"
    latency_s: float = 0.100
    bandwidth_bytes_per_s: Optional[float] = MBPS_10
    dht: str = "can"
    can_dimensions: int = 2
    cluster_jitter: float = 0.35
    sweep_period_s: float = 0.0
    seed: int = 0
    #: Batched message path: DHT batch APIs plus network-level coalescing.
    #: ``False`` reproduces the seed's one-event-per-item message pattern
    #: (the benchmarks' baseline for the event-reduction measurement).
    batching: bool = True
    #: Coalescing window for same-destination sends; ``0.0`` merges sends
    #: issued at the same virtual instant.  Ignored when ``batching`` is off.
    coalesce_window_s: float = 0.0
    #: Compiled row pipeline: slotted tuples plus plan-time expression
    #: compilation on every executor.  ``False`` restores the interpreted
    #: dict-per-row path (the seed behaviour) for A/B comparisons; the flag
    #: is deployment-wide because rehashed fragments travel in the
    #: representation the pipeline works on.
    compiled_rows: bool = True
    #: Columnar chunk execution on top of the compiled pipeline: scan-side
    #: operators work on column arrays and rehash fragments ship as chunk
    #: slices (``prov.put_chunk``).  ``False`` restores the per-row compiled
    #: path bit-for-bit; ignored when ``compiled_rows`` is off.
    columnar: bool = True
    #: Churn: run a failure injector alongside real queries and switch the
    #: whole stack into its failure-aware mode.  ``None`` (the default)
    #: reproduces the seed's failure-free behaviour exactly.
    churn: Optional[ChurnConfig] = None

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ExperimentError("simulation needs at least one node")
        if self.topology not in TOPOLOGIES:
            raise ExperimentError(
                f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}"
            )
        if self.dht not in DHTS:
            raise ExperimentError(f"unknown DHT {self.dht!r}; expected one of {DHTS}")


class PierNetwork:
    """A fully assembled, stabilised PIER deployment inside the simulator."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        self.topology = self._build_topology(config)
        self.network = Network(
            self.topology,
            coalesce_window_s=config.coalesce_window_s if config.batching else None,
        )
        if config.dht == "can":
            self.builder = CanNetworkBuilder(dimensions=config.can_dimensions,
                                             seed=config.seed)
        else:
            self.builder = ChordNetworkBuilder()
        self.routings = self.builder.build_stabilized(self.network)
        self.providers: Dict[int, Provider] = {}
        self.executors: Dict[int, QueryExecutor] = {}
        churn = config.churn
        for address in range(config.num_nodes):
            node = self.network.node(address)
            provider = Provider(
                node, self.routings[address],
                sweep_period_s=config.sweep_period_s,
                instance_seed=address,
                batching=config.batching,
                request_timeout_s=(churn.request_timeout_s
                                   if churn is not None else None),
                request_retries=(churn.request_retries
                                 if churn is not None else 1),
            )
            self.providers[address] = provider
            self.executors[address] = QueryExecutor(
                node, provider, compiled_rows=config.compiled_rows,
                columnar=config.columnar,
                failure_aware=churn is not None,
            )
        self.renewal_agents: Dict[int, RenewalAgent] = {}
        #: Failure injector driving churn (``None`` without a ChurnConfig).
        self.failure_injector: Optional[FailureInjector] = None
        if churn is not None:
            self.failure_injector = self.attach_failure_injector(
                failures_per_minute=churn.failure_rate_per_min,
                detection_delay_s=churn.detection_delay_s,
                downtime_s=churn.downtime_s,
                seed=churn.seed,
                protect=frozenset(churn.protect),
                purge_dead_publisher_stats=churn.purge_dead_publisher_stats,
            )
            if churn.auto_start:
                self.failure_injector.start()
        #: Deployment-wide view of publish-time relation statistics (ground
        #: truth of what :meth:`load_relation` loaded).  Planning nodes
        #: normally fetch the per-publisher partials from the
        #: ``__pier_stats__`` DHT namespace instead; this registry serves
        #: experiments that want the exact global view without traffic.
        self.relation_stats = StatsRegistry()

    # ----------------------------------------------------------- construction

    @staticmethod
    def _build_topology(config: SimulationConfig):
        bandwidth = config.bandwidth_bytes_per_s
        capacity = float("inf") if bandwidth is None else bandwidth
        if config.topology == "full_mesh":
            return FullMeshTopology(config.num_nodes, latency_s=config.latency_s,
                                    capacity_bytes_per_s=capacity)
        if config.topology == "transit_stub":
            return TransitStubTopology(config.num_nodes,
                                       capacity_bytes_per_s=capacity,
                                       seed=config.seed)
        return ClusterTopology(config.num_nodes,
                               capacity_bytes_per_s=capacity,
                               load_jitter=config.cluster_jitter,
                               seed=config.seed)

    # ----------------------------------------------------------------- access

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the deployment."""
        return self.config.num_nodes

    def provider(self, address: int) -> Provider:
        """Provider running on ``address``."""
        return self.providers[address]

    def executor(self, address: int) -> QueryExecutor:
        """Query executor running on ``address``."""
        return self.executors[address]

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.network.now

    def owner_of(self, namespace: str, resource_id) -> int:
        """Address of the node responsible for ``(namespace, resourceID)``."""
        return self.builder.owner_of_key(hash_key(namespace, resource_id))

    # ------------------------------------------------------------------ load

    def load_relation(self, relation: RelationDef,
                      rows_by_node: Dict[int, List[dict]],
                      lifetime: float = 1e9,
                      fast: bool = True,
                      track_renewal: bool = False,
                      publish_stats: bool = True,
                      stats_lifetime: float = STATS_LIFETIME_S) -> int:
        """Publish a relation's tuples from their publishing nodes.

        ``fast=True`` places each tuple directly into its owner's storage
        manager (no messages), which is how benchmarks pre-load tables;
        ``fast=False`` issues real ``put`` traffic from every publisher and
        runs the simulation until it drains.  ``track_renewal`` additionally
        records every tuple with the publisher's renewal agent (create the
        agents first with :meth:`start_renewal_agents`).

        With ``publish_stats`` (the default) each publisher also collects
        statistics over its batch — cardinality, bytes, per-column distinct
        counts and min/max bounds — records them in its executor's local
        registry, and publishes the partial into the ``__pier_stats__``
        namespace as soft state (directly at the owner under ``fast`` loads,
        via a real ``put`` otherwise), so any planning node can fetch and
        merge them for ``strategy=AUTO``.

        Returns the number of tuples loaded.
        """
        loaded = 0
        for publisher, rows in rows_by_node.items():
            if publisher >= self.num_nodes:
                raise ExperimentError(
                    f"publisher address {publisher} outside the {self.num_nodes}-node network"
                )
            provider = self.providers[publisher]
            agent = self.renewal_agents.get(publisher)
            if track_renewal and agent is None and rows:
                raise ExperimentError(
                    "track_renewal=True requires start_renewal_agents() first"
                )
            if publish_stats and rows:
                stats_rid, stats_instance, partial = self._publish_partial_stats(
                    relation, publisher, rows, fast=fast,
                    stats_lifetime=stats_lifetime,
                )
                if track_renewal:
                    # Statistics are soft state like everything else: the
                    # publisher renews its partial (stable instanceID) so it
                    # survives owner churn — and the failure wiring untracks
                    # it when the publisher itself dies, letting stale
                    # cardinalities age out instead of being resurrected.
                    agent.track(STATS_NAMESPACE, stats_rid, stats_instance,
                                partial, stats_lifetime, STATS_ITEM_BYTES)
            for row in rows:
                resource_id = relation.resource_id(row)
                if fast:
                    owner = self.owner_of(relation.namespace, resource_id)
                    instance_id = provider.next_instance_id()
                    self.providers[owner].storage.store(StoredItem(
                        namespace=relation.namespace,
                        resource_id=resource_id,
                        instance_id=instance_id,
                        value=row,
                        key=hash_key(relation.namespace, resource_id),
                        expires_at=self.now + lifetime,
                        stored_at=self.now,
                        publisher=publisher,
                        size_bytes=relation.tuple_bytes,
                    ))
                else:
                    instance_id = provider.put(
                        relation.namespace, resource_id, None, row,
                        lifetime=lifetime, item_bytes=relation.tuple_bytes,
                    )
                if track_renewal:
                    agent.track(relation.namespace, resource_id, instance_id,
                                row, lifetime, relation.tuple_bytes)
                loaded += 1
        if not fast:
            self.network.run_until_idle()
        return loaded

    def _publish_partial_stats(self, relation: RelationDef, publisher: int,
                               rows: List[dict], fast: bool,
                               stats_lifetime: float):
        """Collect and publish one publisher's statistics partial.

        Returns ``(resource_id, instance_id, partial)`` so callers can hand
        the published item to the publisher's renewal agent.
        """
        provider = self.providers[publisher]
        partial = RelationStats.from_rows(relation, rows, at=self.now)
        self.relation_stats.merge_partial(partial)
        self.executors[publisher].stats.merge_partial(partial)
        resource_id = relation_stats_resource_id(relation.name)
        if fast:
            owner = self.owner_of(STATS_NAMESPACE, resource_id)
            instance_id = provider.next_instance_id()
            self.providers[owner].storage.store(StoredItem(
                namespace=STATS_NAMESPACE,
                resource_id=resource_id,
                instance_id=instance_id,
                value=partial,
                key=hash_key(STATS_NAMESPACE, resource_id),
                expires_at=self.now + stats_lifetime,
                stored_at=self.now,
                publisher=publisher,
                size_bytes=STATS_ITEM_BYTES,
            ))
        else:
            instance_id = provider.put(
                STATS_NAMESPACE, resource_id, None, partial,
                lifetime=stats_lifetime, item_bytes=STATS_ITEM_BYTES,
            )
        return resource_id, instance_id, partial

    # ------------------------------------------------------------ soft state

    def start_renewal_agents(self, refresh_period: float) -> Dict[int, RenewalAgent]:
        """Create and start one renewal agent per node."""
        for address, provider in self.providers.items():
            agent = provider.make_renewal_agent(refresh_period)
            agent.start()
            self.renewal_agents[address] = agent
        return self.renewal_agents

    # ----------------------------------------------------------------- churn

    def attach_failure_injector(self, failures_per_minute: float,
                                detection_delay_s: float = DEFAULT_DETECTION_DELAY_S,
                                downtime_s: Optional[float] = None,
                                seed: int = 0,
                                protect: frozenset = frozenset(),
                                purge_dead_publisher_stats: bool = True,
                                ) -> FailureInjector:
        """Build a failure injector whose callbacks keep the stack consistent.

        * **on_fail** — the victim's Provider drops its stored soft state and
          in-flight gets, its executor releases every query's local dataflow
          (process death), and its renewal agent stops renewing statistics
          partials — the data they described died with the node — while
          data-tuple renewals resume on recovery (the Figure 6 repair
          dynamic).
        * **on_detect** — every live routing layer marks the victim dead (so
          lookups reroute), and live owners purge the victim's
          ``__pier_stats__`` partials so the optimizer stops planning from a
          dead publisher's cardinalities.
        * **on_recover** — routing marks the identity alive again; it
          resumes with empty storage.

        The injector is returned un-started; call ``start()`` (ChurnConfig
        deployments do this automatically when ``auto_start`` is set).
        """

        def _on_fail(address: int) -> None:
            self.providers[address].handle_node_failure()
            self.executors[address].handle_node_failure()
            agent = self.renewal_agents.get(address)
            if agent is not None:
                agent.untrack_namespace(STATS_NAMESPACE)

        def _on_detect(address: int) -> None:
            for routing in self.routings.values():
                if hasattr(routing, "mark_neighbor_dead"):
                    routing.mark_neighbor_dead(address)
            if purge_dead_publisher_stats:
                for other, provider in self.providers.items():
                    if other != address and self.network.node(other).alive:
                        provider.storage.purge_publisher(STATS_NAMESPACE,
                                                         address)

        def _on_recover(address: int) -> None:
            for routing in self.routings.values():
                if hasattr(routing, "mark_neighbor_alive"):
                    routing.mark_neighbor_alive(address)

        return FailureInjector(
            network=self.network,
            failures_per_minute=failures_per_minute,
            detection_delay_s=detection_delay_s,
            downtime_s=downtime_s,
            seed=seed,
            on_fail=_on_fail,
            on_detect=_on_detect,
            on_recover=_on_recover,
            protect=protect,
        )

    def reachable_snapshot(self, dilation_s: Optional[float] = None) -> frozenset:
        """Dilated-reachable address snapshot at the current virtual time.

        The reference-set helper for recall-under-churn experiments; without
        an injector every address is reachable.
        """
        if self.failure_injector is None:
            return frozenset(range(self.num_nodes))
        if dilation_s is None:
            dilation_s = self.failure_injector.detection_delay_s
        return self.failure_injector.reachable_addresses(
            self.now, dilation_s=dilation_s
        )

    # ---------------------------------------------------------------- clients

    def client(self, node: int = 0, catalog=None, **client_options):
        """Open a :class:`repro.client.PierClient` session bound to ``node``."""
        from repro.client import PierClient

        return PierClient(self, node=node, catalog=catalog, **client_options)

    # -------------------------------------------------------------- execution

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Advance the simulation."""
        return self.network.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: Optional[int] = None) -> float:
        """Run until the event queue drains."""
        return self.network.run_until_idle(max_events=max_events)


@dataclass
class QueryRunResult:
    """Everything one query execution produced."""

    handle: QueryHandle
    latency: LatencySummary
    traffic: TrafficBreakdown
    elapsed_virtual_s: float
    rows: List[dict] = field(default_factory=list)

    @property
    def result_count(self) -> int:
        """Number of result rows the initiator received."""
        return self.handle.result_count


def run_query(pier: PierNetwork, query: QuerySpec, initiator: int = 0,
              until: Optional[float] = None, kth: int = 30,
              reset_stats: bool = True) -> QueryRunResult:
    """Submit ``query`` from ``initiator`` and run the simulation to completion.

    Back-compat shim over the :class:`repro.client.PierClient` session API:
    submits through a client cursor, drives the simulation, and packages the
    batch-style result the benchmarks consume.  It deliberately does *not*
    tear the query down afterwards (several experiments inspect the
    soft state a query leaves behind); use ``PierClient.sql(...)`` cursors
    for lifecycle-managed queries.

    With no periodic processes active the event queue drains naturally once
    the query finishes; experiments with renewal agents or failure injection
    must pass an explicit ``until`` horizon.
    """
    if reset_stats:
        pier.network.stats.reset()
    start = pier.now
    cursor = pier.client(node=initiator).query(query)
    if until is None:
        pier.run_until_idle()
    else:
        pier.run(until=until)
    handle = cursor.handle
    return QueryRunResult(
        handle=handle,
        latency=summarize_latency(handle, k=kth),
        traffic=breakdown_traffic(pier.network.stats),
        elapsed_virtual_s=pier.now - start,
        rows=handle.final_rows(),
    )
