"""pierlint CLI: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean (every finding baselined), 1 = new findings (or, with
``--strict-baseline``, stale baseline entries), 2 = usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline, triage
from repro.analysis.framework import Analyzer, assign_keys
from repro.analysis.rules import RULE_DOCS, RULE_FAMILIES, build_rules

DEFAULT_BASELINE = "pierlint-baseline.json"


def _changed_modules(rev: str, repo_root: Path) -> Optional[List[str]]:
    """Canonical module paths of .py files changed since ``rev``."""
    try:
        out = subprocess.run(
            ["git", "diff", "--name-only", rev, "--", "*.py"],
            cwd=repo_root, capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        print(f"pierlint: --diff {rev} failed: {exc}", file=sys.stderr)
        return None
    modules = []
    for line in out.splitlines():
        parts = Path(line.strip()).parts
        if "repro" in parts:
            modules.append("/".join(parts[parts.index("repro"):]))
        elif line.strip():
            modules.append(Path(line.strip()).name)
    return modules


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="pierlint: AST-based invariant checker for the "
                    "distributed engine (determinism, wire conformance, "
                    "soft-state balance, asyncio hygiene, exception "
                    "discipline).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to scan (default: src)")
    parser.add_argument("--rules", metavar="FAMILY[,FAMILY...]",
                        help=f"rule families to run "
                             f"(default: all of {', '.join(RULE_FAMILIES)})")
    parser.add_argument("--baseline", metavar="PATH",
                        default=DEFAULT_BASELINE,
                        help="suppression file (default: %(default)s)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every finding")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings (new entries get TODO justifications)")
    parser.add_argument("--strict-baseline", action="store_true",
                        help="fail when the baseline has stale entries")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="write machine-readable results "
                             "(use - for stdout)")
    parser.add_argument("--diff", metavar="REV",
                        help="only report findings in files changed since "
                             "the given git rev (facts still collected "
                             "tree-wide)")
    parser.add_argument("--no-scope", action="store_true",
                        help="apply every rule to every file (fixture mode)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULE_DOCS):
            print(f"{rule_id}  {RULE_DOCS[rule_id]}")
        return 0

    families = args.rules.split(",") if args.rules else None
    try:
        rules = build_rules(families)
    except ValueError as exc:
        print(f"pierlint: {exc}", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"pierlint: no such path: {missing}", file=sys.stderr)
        return 2

    report_only = None
    if args.diff:
        report_only = _changed_modules(args.diff, Path.cwd())
        if report_only is None:
            return 2

    analyzer = Analyzer(rules, scoped=not args.no_scope,
                        report_only=report_only)
    findings = analyzer.run(paths)
    keyed = assign_keys(findings)

    for error in analyzer.project.errors:
        print(f"pierlint: parse error: {error}", file=sys.stderr)

    baseline = Baseline.load(Path(args.baseline))
    if args.no_baseline:
        baseline.entries = {}
    if args.write_baseline:
        baseline.write(keyed)
        print(f"pierlint: wrote {len(keyed)} entries to {baseline.path}")
        return 0

    result = triage(keyed, baseline)
    # A full-tree baseline legitimately has entries outside a --diff set or
    # outside the selected families; staleness is only meaningful on a full
    # run of every rule.
    if report_only is not None or families:
        result.stale_keys = []

    for _key, finding in result.new:
        print(f"{finding.location()}: {finding.rule} "
              f"[{finding.family}/{finding.severity}] {finding.message}")
    for key in result.stale_keys:
        print(f"pierlint: stale baseline entry (fix shipped? delete it): "
              f"{key}", file=sys.stderr)

    if args.json_path:
        payload = {
            "findings": [f.to_json(key) for key, f in result.new],
            "suppressed": [f.to_json(key) for key, f in result.suppressed],
            "stale_baseline_keys": result.stale_keys,
            "summary": {
                "scanned_modules": len(analyzer.project.modules),
                "new": len(result.new),
                "suppressed": len(result.suppressed),
                "stale": len(result.stale_keys),
                "parse_errors": len(analyzer.project.errors),
            },
        }
        text = json.dumps(payload, indent=2)
        if args.json_path == "-":
            print(text)
        else:
            Path(args.json_path).write_text(text + "\n", encoding="utf-8")

    total = len(result.new) + len(result.suppressed)
    print(f"pierlint: {len(analyzer.project.modules)} modules, "
          f"{total} finding(s): {len(result.new)} new, "
          f"{len(result.suppressed)} baselined, "
          f"{len(result.stale_keys)} stale baseline entr"
          f"{'y' if len(result.stale_keys) == 1 else 'ies'}")

    if analyzer.project.errors or result.new:
        return 1
    if args.strict_baseline and result.stale_keys:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
