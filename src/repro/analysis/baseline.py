"""Committed-baseline suppression for pierlint.

The baseline is a JSON file of *justified* findings: sites a human looked
at and declared safe, each with a one-line reason.  A finding whose stable
key appears in the baseline is suppressed; a baseline entry that matches no
current finding is *stale* and reported (the code it excused is gone, so
the excuse must go too — otherwise the file accretes dead suppressions
that hide future regressions at the same key).

Keys deliberately contain no line numbers (see ``Finding.base_key``), so
re-formatting or moving code does not churn the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.framework import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """The parsed suppression file."""

    path: Path
    entries: Dict[str, str] = field(default_factory=dict)  # key → justification

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls(path=path)
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {data.get('version')!r}"
            )
        entries: Dict[str, str] = {}
        for entry in data.get("entries", []):
            entries[entry["key"]] = entry.get("justification", "")
        return cls(path=path, entries=entries)

    def write(self, keyed_findings: Sequence[Tuple[str, Finding]]) -> None:
        """Write a fresh baseline from the given findings.

        Existing justifications are preserved for keys that survive; new
        keys get a ``TODO`` marker a reviewer must replace.
        """
        entries = []
        for key, finding in keyed_findings:
            entries.append({
                "key": key,
                "rule": finding.rule,
                "justification": self.entries.get(
                    key, "TODO: justify or fix"),
            })
        payload = {"version": BASELINE_VERSION, "entries": entries}
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8")


@dataclass
class Triage:
    """Findings split against a baseline."""

    new: List[Tuple[str, Finding]] = field(default_factory=list)
    suppressed: List[Tuple[str, Finding]] = field(default_factory=list)
    stale_keys: List[str] = field(default_factory=list)


def triage(keyed_findings: Sequence[Tuple[str, Finding]],
           baseline: Baseline) -> Triage:
    result = Triage()
    seen = set()
    for key, finding in keyed_findings:
        if key in baseline.entries:
            result.suppressed.append((key, finding))
            seen.add(key)
        else:
            result.new.append((key, finding))
    result.stale_keys = [key for key in baseline.entries if key not in seen]
    return result
