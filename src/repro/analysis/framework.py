"""pierlint core: findings, rules, module facts, and the two-pass analyzer.

The engine is deliberately small.  A run has two phases:

1. **Module pass** — every file is parsed once into a :class:`ModuleInfo`
   (AST plus a handful of pre-extracted facts rules share: class-level
   string constants, ``__slots__`` classes, ``async def`` names).  Each
   rule's :meth:`Rule.check_module` visits the modules inside its scope and
   emits local findings.
2. **Project pass** — rules that need cross-module facts (the wire-protocol
   conformance family) implement :meth:`Rule.finish`, which runs after
   every module has been seen and may emit findings anywhere in the tree.

Findings carry a *stable key* — ``rule:module:scope:detail[#n]`` — that
does not contain line numbers, so the committed baseline survives edits
that merely shift code up or down a file.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    family: str
    path: str          #: path as given on the command line (for display)
    module: str        #: canonical module-relative path, e.g. ``repro/dht/can.py``
    line: int
    col: int
    message: str
    scope: str         #: enclosing ``Class.method`` (or ``<module>``)
    detail: str        #: short stable descriptor used in the baseline key
    severity: str = SEVERITY_ERROR

    def base_key(self) -> str:
        """Baseline identity *without* the duplicate-occurrence ordinal."""
        return f"{self.rule}:{self.module}:{self.scope}:{self.detail}"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self, key: str) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "scope": self.scope,
            "key": key,
        }


@dataclass
class ModuleInfo:
    """One parsed source file plus the shared facts rules keep re-deriving."""

    path: Path                 #: absolute filesystem path
    display: str               #: path for human output (as discovered)
    module: str                #: canonical module-relative path (posix)
    tree: ast.Module
    #: ``ClassName.CONST`` and bare ``CONST`` string constants → value.
    str_constants: Dict[str, str] = field(default_factory=dict)
    #: class qualname → ClassDef node, for classes declaring ``__slots__``.
    slots_classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    #: names (bare and ``Class.method``) defined with ``async def``.
    async_defs: Dict[str, ast.AsyncFunctionDef] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, display: str, module: str) -> "ModuleInfo":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        info = cls(path=path, display=display, module=module, tree=tree)
        info._extract_facts()
        return info

    def _extract_facts(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                self._extract_class_facts(node)
            elif isinstance(node, ast.AsyncFunctionDef):
                self.async_defs.setdefault(node.name, node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (isinstance(target, ast.Name)
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str)):
                    self.str_constants.setdefault(target.id, node.value.value)

    def _extract_class_facts(self, klass: ast.ClassDef) -> None:
        has_slots = False
        for stmt in klass.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__slots__":
                    has_slots = True
                elif (isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, str)):
                    self.str_constants.setdefault(target.id, stmt.value.value)
                    self.str_constants.setdefault(
                        f"{klass.name}.{target.id}", stmt.value.value)
            elif isinstance(stmt, ast.AsyncFunctionDef):
                self.async_defs.setdefault(stmt.name, stmt)
                self.async_defs.setdefault(f"{klass.name}.{stmt.name}", stmt)
        if has_slots:
            self.slots_classes[klass.name] = klass


class Rule:
    """Base class for one rule family (a handful of related checks)."""

    #: Short id prefix, e.g. ``PL1``; individual findings use ``PL101``…
    family = "generic"
    #: fnmatch patterns over :attr:`ModuleInfo.module` this rule applies to.
    scope_patterns: Tuple[str, ...] = ("*",)

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        #: set by the analyzer before the module pass; rules may consult the
        #: whole-project fact tables (e.g. cross-module string constants).
        self.project: Optional["Project"] = None

    # -- scope ------------------------------------------------------------

    def in_scope(self, info: ModuleInfo, *, scoped: bool = True) -> bool:
        if not scoped:
            return True
        return any(fnmatch.fnmatch(info.module, pattern)
                   for pattern in self.scope_patterns)

    # -- phases -----------------------------------------------------------

    def check_module(self, info: ModuleInfo) -> None:
        """Per-module pass.  Override; call :meth:`report` for each hit."""

    def finish(self, project: "Project") -> None:
        """Cross-module pass, after every module was seen.  Optional."""

    # -- reporting --------------------------------------------------------

    def report(self, info: ModuleInfo, node: ast.AST, rule: str, message: str,
               detail: str, scope: str, severity: str = SEVERITY_ERROR) -> None:
        self.findings.append(Finding(
            rule=rule,
            family=self.family,
            path=info.display,
            module=info.module,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            scope=scope,
            detail=detail,
            severity=severity,
        ))


class ScopeStack(ast.NodeVisitor):
    """Visitor that tracks the enclosing ``Class.method`` qualifier.

    Nested (closure) functions report the *outermost* enclosing function —
    that is the name a reader greps for, and it keeps baseline keys stable
    when a closure is renamed or inlined.
    """

    def __init__(self) -> None:
        self._classes: List[str] = []
        self._functions: List[str] = []

    @property
    def scope(self) -> str:
        parts: List[str] = []
        if self._classes:
            parts.append(self._classes[-1])
        if self._functions:
            parts.append(self._functions[0])
        return ".".join(parts) if parts else "<module>"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._classes.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._classes.pop()

    def _visit_function(self, node: ast.AST) -> None:
        self._functions.append(getattr(node, "name", "<lambda>"))
        try:
            self.generic_visit(node)
        finally:
            self._functions.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


# ----------------------------------------------------------- AST utilities


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """Dotted name of the called object, if statically nameable."""
    return dotted_name(call.func)


def call_attr(call: ast.Call) -> Optional[str]:
    """The final attribute of a method call (``x.y.put`` → ``put``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def resolve_string(node: ast.AST, info: ModuleInfo,
                   project: Optional["Project"] = None) -> Optional[str]:
    """Resolve an expression to a string: literal, constant, or class attr."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    name: Optional[str] = None
    if isinstance(node, ast.Attribute):
        # self.PROTOCOL_X / cls.PROTOCOL_X / SomeClass.PROTOCOL_X
        owner = dotted_name(node.value)
        if owner in ("self", "cls"):
            name = node.attr
        elif owner is not None:
            name = f"{owner}.{node.attr}"
            if info.str_constants.get(name) is None:
                name = node.attr  # fall back to the bare constant name
    elif isinstance(node, ast.Name):
        name = node.id
    if name is None:
        return None
    value = info.str_constants.get(name)
    if value is None and project is not None:
        value = project.str_constants.get(name)
    return value


def resolve_string_candidates(node: ast.AST, info: ModuleInfo,
                              project: Optional["Project"] = None,
                              ) -> Optional[frozenset]:
    """All string values an expression may take, modelling subclass overrides.

    A literal resolves to itself.  ``SomeClass.CONST`` resolves to that
    class's value when known.  ``self.CONST`` / ``cls.CONST`` / bare
    ``CONST`` resolve to *every* value any scanned class assigns to an
    attribute of that name — a base class sending ``self.PROTOCOL_X``
    dispatches, at runtime, on whichever subclass value is live, and the
    conformance rules must not flag the base-class default as unhandled.
    Returns ``None`` when the expression is not statically resolvable.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return frozenset((node.value,))
    attr: Optional[str] = None
    if isinstance(node, ast.Attribute):
        owner = dotted_name(node.value)
        if owner not in ("self", "cls") and owner is not None:
            qualified = f"{owner}.{node.attr}"
            value = info.str_constants.get(qualified)
            if value is None and project is not None:
                value = project.str_constants.get(qualified)
            if value is not None:
                return frozenset((value,))
        attr = node.attr
    elif isinstance(node, ast.Name):
        attr = node.id
    if attr is None:
        return None
    candidates = set()
    if project is not None:
        candidates.update(project.attr_values.get(attr, ()))
    value = info.str_constants.get(attr)
    if value is not None:
        candidates.add(value)
    return frozenset(candidates) if candidates else None


def keyword_arg(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def has_argument(call: ast.Call, name: str, positional_index: int) -> bool:
    """Whether the call binds ``name`` (as keyword or by position)."""
    if keyword_arg(call, name) is not None:
        return True
    if any(kw.arg is None for kw in call.keywords):  # **kwargs: assume bound
        return True
    return len(call.args) > positional_index


# ----------------------------------------------------------------- project


class Project:
    """Everything the analyzer learned about the scanned tree."""

    def __init__(self) -> None:
        self.modules: List[ModuleInfo] = []
        #: merged constant map (last writer wins is fine: names are unique
        #: per class and the per-module map is consulted first).
        self.str_constants: Dict[str, str] = {}
        #: bare attribute name → every string value some class assigns it
        #: (the subclass-override model for ``self.CONST`` resolution).
        self.attr_values: Dict[str, set] = {}
        self.errors: List[str] = []

    def add(self, info: ModuleInfo) -> None:
        self.modules.append(info)
        for name, value in info.str_constants.items():
            self.str_constants.setdefault(name, value)
            bare = name.rsplit(".", 1)[-1]
            self.attr_values.setdefault(bare, set()).add(value)

    def module_by_name(self, module: str) -> Optional[ModuleInfo]:
        for info in self.modules:
            if info.module == module:
                return info
        return None


def canonical_module(path: Path) -> str:
    """Module-relative posix path: anchored at the ``repro`` package when
    the file lives inside one, else just the file name (fixture trees)."""
    parts = path.parts
    for anchor in ("repro",):
        if anchor in parts:
            return "/".join(parts[parts.index(anchor):])
    return path.name


def iter_python_files(paths: Sequence[Path]) -> Iterable[Tuple[Path, str]]:
    """Yield ``(absolute_path, display_path)`` for every .py under ``paths``."""
    for given in paths:
        root = given.resolve()
        if root.is_file():
            yield root, str(given)
        elif root.is_dir():
            for found in sorted(root.rglob("*.py")):
                try:
                    display = str(given / found.relative_to(root))
                except ValueError:  # pragma: no cover - symlink escape
                    display = str(found)
                yield found, display


class Analyzer:
    """Run a set of rules over a file tree and collect findings."""

    def __init__(self, rules: Sequence[Rule], *, scoped: bool = True,
                 report_only: Optional[Sequence[str]] = None) -> None:
        self.rules = list(rules)
        self.scoped = scoped
        #: when set (``--diff``), only findings whose module path is in this
        #: set are reported; *facts* are still collected tree-wide so the
        #: cross-module rules stay sound.
        self.report_only = set(report_only) if report_only is not None else None
        self.project = Project()

    def run(self, paths: Sequence[Path]) -> List[Finding]:
        for path, display in iter_python_files(paths):
            module = canonical_module(path)
            try:
                info = ModuleInfo.parse(path, display, module)
            except SyntaxError as exc:
                self.project.errors.append(f"{display}: {exc}")
                continue
            self.project.add(info)
        for rule in self.rules:
            rule.project = self.project
        for info in self.project.modules:
            for rule in self.rules:
                if rule.in_scope(info, scoped=self.scoped):
                    rule.check_module(info)
        for rule in self.rules:
            rule.finish(self.project)
        findings = [f for rule in self.rules for f in rule.findings]
        if self.report_only is not None:
            findings = [f for f in findings if f.module in self.report_only]
        findings.sort(key=lambda f: (f.module, f.line, f.col, f.rule))
        return findings


def assign_keys(findings: Sequence[Finding]) -> List[Tuple[str, Finding]]:
    """Attach stable keys, disambiguating duplicates with ``#n`` ordinals.

    Findings must already be in deterministic (sorted) order so ordinals
    are assigned consistently between runs.
    """
    seen: Dict[str, int] = {}
    keyed: List[Tuple[str, Finding]] = []
    for finding in findings:
        base = finding.base_key()
        count = seen.get(base, 0)
        seen[base] = count + 1
        keyed.append((base if count == 0 else f"{base}#{count + 1}", finding))
    return keyed
