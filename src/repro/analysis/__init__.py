"""pierlint — AST-based invariant checker for the distributed engine.

Past PRs each hand-enforced a fragile cross-cutting invariant: bit-identical
simulator determinism, wire-codec/handler coverage for every payload that
crosses TCP, subscription/soft-state teardown balance, and asyncio task
hygiene.  ``pierlint`` checks those mechanically, as five rule families over
the whole source tree (see :mod:`repro.analysis.rules`), with a
committed-baseline suppression file for the sites a human has justified.

Run it as ``python -m repro.analysis [paths]``; use the API for tests::

    from repro.analysis import analyze_paths
    findings = analyze_paths(["src"])          # scoped, all families
    findings = analyze_paths([fixture_dir], scoped=False)
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.analysis.baseline import Baseline, Triage, triage
from repro.analysis.framework import (
    Analyzer,
    Finding,
    assign_keys,
)
from repro.analysis.rules import RULE_DOCS, RULE_FAMILIES, build_rules


def analyze_paths(paths: Sequence[Union[str, Path]],
                  families: Optional[Sequence[str]] = None,
                  *, scoped: bool = True,
                  report_only: Optional[Sequence[str]] = None,
                  ) -> List[Finding]:
    """Run the selected rule families over ``paths``; return findings."""
    analyzer = Analyzer(build_rules(families), scoped=scoped,
                        report_only=report_only)
    return analyzer.run([Path(p) for p in paths])


__all__ = [
    "Analyzer",
    "Baseline",
    "Finding",
    "RULE_DOCS",
    "RULE_FAMILIES",
    "Triage",
    "analyze_paths",
    "assign_keys",
    "build_rules",
    "triage",
]
