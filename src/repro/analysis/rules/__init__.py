"""pierlint rule registry: one entry per rule family."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.analysis.framework import Rule
from repro.analysis.rules.asyncio_hygiene import AsyncioHygieneRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exceptions import ExceptionDisciplineRule
from repro.analysis.rules.softstate import SoftStateRule
from repro.analysis.rules.wire import WireConformanceRule

#: family name → rule class, in reporting order.
RULE_FAMILIES: Dict[str, Type[Rule]] = {
    "determinism": DeterminismRule,
    "wire": WireConformanceRule,
    "softstate": SoftStateRule,
    "asyncio": AsyncioHygieneRule,
    "exceptions": ExceptionDisciplineRule,
}

#: finding-id prefix → one-line description (for ``--list-rules``).
RULE_DOCS = {
    "PL101": "wall-clock read in a simulator-reachable module",
    "PL102": "process-global random.* call (unseeded RNG)",
    "PL103": "unordered set/dict-view iteration feeding sends or DHT puts",
    "PL201": "protocol sent but no handler registered anywhere",
    "PL202": "handler registered for a protocol nothing sends",
    "PL203": "__slots__ class mutated outside __init__",
    "PL204": "wire _STATE_FILTERS key names an unknown class",
    "PL301": "on_new_data without off_new_data in the module",
    "PL302": "multicast subscribe without unsubscribe in the module",
    "PL303": "periodic timer without a cancel()/teardown path",
    "PL304": "DHT put without an explicit soft-state lifetime",
    "PL401": "coroutine called but never awaited",
    "PL402": "create_task/ensure_future handle dropped",
    "PL501": "bare except:",
    "PL502": "except Exception: pass in a request/retry lane",
}


def build_rules(families: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the selected rule families (all of them by default)."""
    selected = list(families) if families else list(RULE_FAMILIES)
    unknown = [name for name in selected if name not in RULE_FAMILIES]
    if unknown:
        raise ValueError(
            f"unknown rule families {unknown}; known: {sorted(RULE_FAMILIES)}"
        )
    return [RULE_FAMILIES[name]() for name in selected]
