"""PL3xx — soft-state balance rules.

Everything published into the DHT is soft state: it expires unless renewed,
and every continuous-query subscription (``on_new_data``, multicast
``subscribe``, periodic timers) holds node-side state until an explicit
teardown releases it.  The PR 2 leak — executor dataflows kept alive by
``newData`` callbacks nobody unregistered — is the defect class these rules
pin down mechanically:

* **PL301** — a module calls ``.on_new_data(...)`` but never calls
  ``.off_new_data(...)``: the subscription can never be released.
* **PL302** — a module calls ``.subscribe(...)`` (multicast groups) but
  never ``.unsubscribe(...)``.
* **PL303** — a ``schedule_periodic(...)`` whose handle is discarded (bare
  expression statement), or a module holding periodic timers with no
  ``.cancel()`` reachable anywhere in it.
* **PL304** — a DHT publish (``put`` / ``put_batch`` / ``put_chunk`` /
  ``put_direct`` / ``put_direct_batch``) that does not thread an explicit
  ``lifetime``: relying on the provider default turns a deliberate
  soft-state decision into an accident.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis.framework import (
    ModuleInfo,
    Rule,
    ScopeStack,
    call_attr,
    has_argument,
)

#: publish method → index of its first positional ``lifetime`` argument.
PUT_LIFETIME_INDEX = {
    "put": 4,                # (namespace, resource_id, instance_id, value, lifetime)
    "put_direct": 5,         # (target, namespace, rid, iid, value, lifetime)
    "put_batch": 2,          # (namespace, entries, lifetime)
    "put_direct_batch": 3,   # (target, namespace, entries, lifetime)
    "put_chunk": 3,          # (namespace, resource_ids, values, lifetime)
}

#: modules that implement the provider/storage layer itself — their internal
#: delegation legitimately forwards lifetimes positionally or via dicts.
IMPLEMENTATION_MODULES = (
    "repro/dht/provider.py",
    "repro/dht/storage.py",
)


class SoftStateRule(Rule):
    family = "softstate"
    scope_patterns = (
        "repro/core/*",
        "repro/core/*/*",
        "repro/dht/*",
        "repro/harness/*",
        "repro/workloads/*",
        "repro/client.py",
    )

    def check_module(self, info: ModuleInfo) -> None:
        visitor = _SoftStateVisitor(self, info)
        visitor.visit(info.tree)
        visitor.report_module_balance()


class _SoftStateVisitor(ScopeStack):
    def __init__(self, rule: SoftStateRule, info: ModuleInfo) -> None:
        super().__init__()
        self.rule = rule
        self.info = info
        self.on_new_data: List[Tuple[ast.AST, str]] = []
        self.off_new_data = 0
        self.subscribes: List[Tuple[ast.AST, str]] = []
        self.unsubscribes = 0
        self.periodic_handles: List[Tuple[ast.AST, str]] = []
        self.cancels = 0

    # ------------------------------------------------------------- visits

    def visit_Expr(self, node: ast.Expr) -> None:
        # A bare-statement schedule_periodic discards its handle: nothing
        # can ever cancel that timer.
        if (isinstance(node.value, ast.Call)
                and call_attr(node.value) == "schedule_periodic"):
            self.rule.report(
                self.info, node, "PL303",
                "schedule_periodic handle is discarded — the timer can "
                "never be cancelled from a teardown path",
                detail="discarded-handle", scope=self.scope)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        attr = call_attr(node)
        if attr == "on_new_data" and self._is_method_call(node):
            self.on_new_data.append((node, self.scope))
        elif attr == "off_new_data" and self._is_method_call(node):
            self.off_new_data += 1
        elif attr == "subscribe" and self._is_method_call(node):
            self.subscribes.append((node, self.scope))
        elif attr == "unsubscribe" and self._is_method_call(node):
            self.unsubscribes += 1
        elif attr == "schedule_periodic" and self._is_method_call(node):
            self.periodic_handles.append((node, self.scope))
        elif attr == "cancel":
            self.cancels += 1
        elif attr in PUT_LIFETIME_INDEX and self._is_method_call(node):
            self._check_put_lifetime(node, attr)
        self.generic_visit(node)

    # ------------------------------------------------------------ helpers

    @staticmethod
    def _is_method_call(node: ast.Call) -> bool:
        return isinstance(node.func, ast.Attribute)

    def _is_definition_module(self) -> bool:
        return self.info.module in IMPLEMENTATION_MODULES

    def _check_put_lifetime(self, node: ast.Call, attr: str) -> None:
        if self._is_definition_module():
            return
        if has_argument(node, "lifetime", PUT_LIFETIME_INDEX[attr]):
            return
        self.rule.report(
            self.info, node, "PL304",
            f"DHT publish .{attr}(...) without an explicit lifetime — "
            f"soft-state lifetimes must be a deliberate per-callsite choice",
            detail=f"{attr}-no-lifetime", scope=self.scope)

    # ------------------------------------------------- module-level balance

    def report_module_balance(self) -> None:
        if self.on_new_data and not self.off_new_data:
            node, scope = self.on_new_data[0]
            self.rule.report(
                self.info, node, "PL301",
                f"module subscribes via on_new_data ({len(self.on_new_data)} "
                f"site(s)) but never calls off_new_data — the newData "
                f"callback leaks past query teardown",
                detail="on_new_data-unbalanced", scope=scope)
        if self.subscribes and not self.unsubscribes:
            node, scope = self.subscribes[0]
            self.rule.report(
                self.info, node, "PL302",
                f"module subscribes to multicast groups "
                f"({len(self.subscribes)} site(s)) but never calls "
                f"unsubscribe — group membership leaks",
                detail="subscribe-unbalanced", scope=scope)
        if self.periodic_handles and not self.cancels:
            node, scope = self.periodic_handles[0]
            self.rule.report(
                self.info, node, "PL303",
                f"module schedules periodic timers "
                f"({len(self.periodic_handles)} site(s)) but contains no "
                f".cancel() call — no teardown path can stop them",
                detail="no-cancel-in-module", scope=scope)
