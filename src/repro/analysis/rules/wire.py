"""PL2xx — wire-protocol conformance rules.

Every payload that crosses the network is dispatched by a protocol string
(``Message.protocol``) to a handler registered on the destination node, and
``Node.deliver`` *raises* on an unknown protocol — so a sent type with no
registered handler is a latent crash on the receiving node, and the msgpack
object codec (``net/wire.py``) silently stops filtering transient state
when a ``_STATE_FILTERS`` entry names a class that was renamed.  These are
cross-module properties no unit test sees locally:

* **PL201** — a send names a protocol string that no module ever registers
  a handler for.
* **PL202** — a handler is registered for a protocol no send site ever
  names (dead dispatch table entry, or the send forgot the constant).
* **PL203** — a class declaring ``__slots__`` writes attributes outside
  ``__init__``/``__post_init__``/``__setstate__``.  Slots classes here are
  in-flight envelopes (``Message``) and codec state; post-construction
  mutation breaks the "messages are immutable once sent" contract the
  simulator's zero-copy local delivery relies on.
* **PL204** — a ``_STATE_FILTERS["module:Class"]`` key in ``net/wire.py``
  that does not resolve to a class defined in the scanned tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.framework import (
    ModuleInfo,
    Project,
    Rule,
    ScopeStack,
    call_attr,
    dotted_name,
    keyword_arg,
    resolve_string_candidates,
)

#: Methods whose first argument registers a protocol handler.
REGISTER_METHODS = {"register_handler", "replace_handler"}
BOUNCE_REGISTER_METHODS = {"register_bounce_handler"}
#: ``Node.send(dst, protocol, ...)`` — protocol is the 2nd positional.
SEND_PROTOCOL_INDEX = {"send": 1, "control_message": 2, "data_message": 2}
#: ``Message(src, dst, protocol, ...)`` — protocol is the 3rd positional.
MESSAGE_CTORS = {"Message": 2}

#: Methods allowed to write ``self.<attr>`` in a ``__slots__`` class.
SLOTS_INIT_METHODS = {"__init__", "__post_init__", "__setstate__", "__new__"}


@dataclass
class _ProtocolSite:
    protocols: Tuple[str, ...]
    info: ModuleInfo
    node: ast.AST
    scope: str
    expr: str


class WireConformanceRule(Rule):
    family = "wire"
    scope_patterns = ("repro/*", "repro/*/*", "*")

    def __init__(self) -> None:
        super().__init__()
        self._sends: List[_ProtocolSite] = []
        self._registrations: List[_ProtocolSite] = []
        self._bounce_registrations: List[_ProtocolSite] = []
        self._state_filter_keys: List[Tuple[str, ModuleInfo, ast.AST]] = []

    # ------------------------------------------------------------ collect

    def check_module(self, info: ModuleInfo) -> None:
        _WireVisitor(self, info).visit(info.tree)
        self._check_slots_classes(info)

    # ------------------------------------------------------- cross-module

    def finish(self, project: Project) -> None:
        registered: Set[str] = set()
        for site in self._registrations:
            registered.update(site.protocols)
        sent: Set[str] = set()
        for site in self._sends:
            sent.update(site.protocols)

        # A site's protocol expression resolves to a *candidate set* (all
        # subclass overrides of the constant).  It is conformant when any
        # candidate matches — the runtime value is one of them.
        for site in self._sends:
            if registered.isdisjoint(site.protocols):
                shown = "/".join(sorted(site.protocols))
                self.report(
                    site.info, site.node, "PL201",
                    f"protocol {shown!r} is sent here but no module "
                    f"registers a handler for it — Node.deliver will "
                    f"raise on arrival",
                    detail=shown, scope=site.scope)
        for site in self._registrations:
            if sent.isdisjoint(site.protocols):
                shown = "/".join(sorted(site.protocols))
                self.report(
                    site.info, site.node, "PL202",
                    f"handler registered for protocol {shown!r} but "
                    f"no send site names it (dead dispatch entry?)",
                    detail=shown, scope=site.scope,
                    severity="warning")
        for site in self._bounce_registrations:
            if sent.isdisjoint(site.protocols) \
                    and registered.isdisjoint(site.protocols):
                shown = "/".join(sorted(site.protocols))
                self.report(
                    site.info, site.node, "PL202",
                    f"bounce handler registered for protocol "
                    f"{shown!r} that nothing sends or handles",
                    detail=f"bounce:{shown}", scope=site.scope,
                    severity="warning")

        known_classes = self._collect_classes(project)
        for key, info, node in self._state_filter_keys:
            module, _, qualname = key.partition(":")
            target = (module.replace(".", "/") + ".py",
                      qualname.split(".")[0])
            if target not in known_classes:
                self.report(
                    info, node, "PL204",
                    f"wire state filter names {key!r} but no scanned module "
                    f"defines that class — the filter is silently dead",
                    detail=key, scope="<module>")

    @staticmethod
    def _collect_classes(project: Project) -> Set[Tuple[str, str]]:
        classes: Set[Tuple[str, str]] = set()
        for info in project.modules:
            for node in ast.walk(info.tree):
                if isinstance(node, ast.ClassDef):
                    classes.add((info.module, node.name))
        return classes

    # ----------------------------------------------------------- PL203

    def _check_slots_classes(self, info: ModuleInfo) -> None:
        for class_name, klass in info.slots_classes.items():
            for method in klass.body:
                if not isinstance(method,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in SLOTS_INIT_METHODS:
                    continue
                for node in ast.walk(method):
                    target = self._self_attr_write(node)
                    if target is not None:
                        self.report(
                            info, node, "PL203",
                            f"__slots__ class {class_name} writes "
                            f"self.{target} outside __init__ "
                            f"(in {method.name}); slotted envelopes must be "
                            f"init-complete and immutable in flight",
                            detail=f"{class_name}.{method.name}:{target}",
                            scope=f"{class_name}.{method.name}")

    @staticmethod
    def _self_attr_write(node: ast.AST) -> Optional[str]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                return target.attr
        return None


class _WireVisitor(ScopeStack):
    def __init__(self, rule: WireConformanceRule, info: ModuleInfo) -> None:
        super().__init__()
        self.rule = rule
        self.info = info

    def visit_Call(self, node: ast.Call) -> None:
        attr = call_attr(node)
        if attr in REGISTER_METHODS or attr in BOUNCE_REGISTER_METHODS:
            self._record_registration(node, attr)
        elif attr in SEND_PROTOCOL_INDEX and isinstance(node.func,
                                                        ast.Attribute):
            self._record_protocol_use(node, SEND_PROTOCOL_INDEX[attr],
                                      self.rule._sends)
        elif isinstance(node.func, ast.Name):
            name = node.func.id
            if name in SEND_PROTOCOL_INDEX:
                self._record_protocol_use(node, SEND_PROTOCOL_INDEX[name],
                                          self.rule._sends)
            elif name in MESSAGE_CTORS:
                self._record_protocol_use(node, MESSAGE_CTORS[name],
                                          self.rule._sends)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # _STATE_FILTERS["repro.core.query:QuerySpec"] = ...
        for target in node.targets:
            if (isinstance(target, ast.Subscript)
                    and dotted_name(target.value) == "_STATE_FILTERS"
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)):
                self.rule._state_filter_keys.append(
                    (target.slice.value, self.info, node))
        self.generic_visit(node)

    def _record_registration(self, node: ast.Call, attr: str) -> None:
        if not node.args:
            return
        protocols = resolve_string_candidates(node.args[0], self.info,
                                              self.rule_project())
        if protocols is None:
            return
        bucket = (self.rule._bounce_registrations
                  if attr in BOUNCE_REGISTER_METHODS
                  else self.rule._registrations)
        bucket.append(_ProtocolSite(
            protocols=tuple(sorted(protocols)), info=self.info, node=node,
            scope=self.scope, expr=attr))

    def _record_protocol_use(self, node: ast.Call, index: int,
                             bucket: List[_ProtocolSite]) -> None:
        expr: Optional[ast.expr] = None
        if len(node.args) > index:
            expr = node.args[index]
        else:
            expr = keyword_arg(node, "protocol")
        if expr is None:
            return
        protocols = resolve_string_candidates(expr, self.info,
                                              self.rule_project())
        if protocols is None:
            return
        bucket.append(_ProtocolSite(
            protocols=tuple(sorted(protocols)), info=self.info, node=node,
            scope=self.scope, expr=call_attr(node) or "?"))

    def rule_project(self) -> Optional[Project]:
        # Resolution falls back to the whole-project constant map for
        # cross-class references like ``RoutingLayer.PROTOCOL_ROUTE_BATCH``.
        return self.rule.project
