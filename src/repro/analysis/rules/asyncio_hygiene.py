"""PL4xx — asyncio hygiene for the real-transport modules.

The real TCP backend runs one event loop per process; the two classic
defects there are a coroutine that is *called* but never awaited (the body
silently never runs — Python only warns at GC time) and a fire-and-forget
``create_task`` whose reference is dropped, so the task can be garbage
collected mid-flight and its exceptions are never observed.  The PR 8
``RealTransport.close()`` fix was exactly this class of bug.

* **PL401** — a bare-statement call to a function defined with
  ``async def`` in the same module, without ``await``.
* **PL402** — ``create_task(...)`` / ``ensure_future(...)`` used as a bare
  expression statement: the task handle is neither stored nor given a
  done-callback.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import ModuleInfo, Rule, ScopeStack, call_attr

TASK_FACTORIES = {"create_task", "ensure_future"}


class AsyncioHygieneRule(Rule):
    family = "asyncio"
    scope_patterns = (
        "repro/net/real.py",
        "repro/node.py",
    )

    def check_module(self, info: ModuleInfo) -> None:
        _AsyncioVisitor(self, info).visit(info.tree)


class _AsyncioVisitor(ScopeStack):
    def __init__(self, rule: AsyncioHygieneRule, info: ModuleInfo) -> None:
        super().__init__()
        self.rule = rule
        self.info = info

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Call):
            attr = call_attr(call)
            if attr in TASK_FACTORIES:
                self.rule.report(
                    self.info, node, "PL402",
                    f"{attr}(...) result is dropped — store the task (or "
                    f"add a done callback) so it cannot be GC'd mid-flight "
                    f"and its exception is observed",
                    detail=f"{attr}-dropped", scope=self.scope)
            elif self._is_local_coroutine_call(call):
                self.rule.report(
                    self.info, node, "PL401",
                    f"coroutine {attr}() is called but never awaited — the "
                    f"body will not run",
                    detail=f"{attr}-not-awaited", scope=self.scope)
        self.generic_visit(node)

    def _is_local_coroutine_call(self, call: ast.Call) -> bool:
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")):
            name = func.attr
        return name is not None and name in self.info.async_defs
