"""PL5xx — exception discipline in request/retry lanes.

The churn-resilience layer (PR 5) accounts for every failed request —
retry counters, bounce counters, per-scope issued/completed/failed
bookkeeping — and ``completeness()`` reporting is only honest if failures
actually reach it.  A swallowed exception in a request, retry or delivery
lane silently converts "degraded" into "perfect", which is worse than the
failure itself.

* **PL501** — a bare ``except:`` anywhere in the scanned tree (it also
  catches ``KeyboardInterrupt``/``SystemExit``).
* **PL502** — an ``except Exception:`` / ``except BaseException:`` whose
  entire body is ``pass``/``continue``/``...``, in the request/retry lane
  modules (``dht/``, ``net/``, the executor, the remote gateway client).
"""

from __future__ import annotations

import ast
import fnmatch

from repro.analysis.framework import ModuleInfo, Rule, ScopeStack, dotted_name

BROAD_TYPES = {"Exception", "BaseException"}

#: modules whose swallowed exceptions would corrupt failure accounting.
REQUEST_LANE_PATTERNS = (
    "repro/dht/*",
    "repro/net/*",
    "repro/core/executor.py",
    "repro/remote.py",
    "repro/node.py",
)


class ExceptionDisciplineRule(Rule):
    family = "exceptions"
    scope_patterns = ("repro/*", "repro/*/*", "*")

    def check_module(self, info: ModuleInfo) -> None:
        _ExceptionVisitor(self, info).visit(info.tree)


class _ExceptionVisitor(ScopeStack):
    def __init__(self, rule: ExceptionDisciplineRule, info: ModuleInfo) -> None:
        super().__init__()
        self.rule = rule
        self.info = info
        self.in_request_lane = any(
            fnmatch.fnmatch(info.module, pattern)
            for pattern in REQUEST_LANE_PATTERNS
        ) or "/" not in info.module  # fixture files count as request lanes

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.rule.report(
                self.info, node, "PL501",
                "bare except: also swallows KeyboardInterrupt/SystemExit — "
                "name the exception(s) this lane expects",
                detail="bare-except", scope=self.scope)
        elif self.in_request_lane and self._is_broad(node.type) \
                and self._body_swallows(node.body):
            self.rule.report(
                self.info, node, "PL502",
                "except Exception with a pass-only body in a request/retry "
                "lane — the failure never reaches the completeness "
                "accounting; log it or count it",
                detail="swallowed-exception", scope=self.scope)
        self.generic_visit(node)

    @staticmethod
    def _is_broad(type_node: ast.expr) -> bool:
        names = []
        if isinstance(type_node, ast.Tuple):
            names = [dotted_name(el) for el in type_node.elts]
        else:
            names = [dotted_name(type_node)]
        return any(name in BROAD_TYPES for name in names if name)

    @staticmethod
    def _body_swallows(body: list) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is Ellipsis):
                continue
            return False
        return True
