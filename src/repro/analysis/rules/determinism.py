"""PL1xx — determinism rules for simulator-reachable modules.

The discrete-event simulator promises bit-identical replays and the CI
three-mode equivalence gates depend on it: every node of a simulated
deployment shares one virtual clock and one seeded RNG, and anything that
feeds a message send or DHT put must iterate in a deterministic order.
These rules guard the three ways new code breaks that promise:

* **PL101** — wall-clock reads (``time.time``, ``datetime.now``…).  Virtual
  time is ``self.now`` / ``network.timers.now``; a wall-clock read differs
  between runs and between the simulator and the real transport.
* **PL102** — module-level ``random.*`` calls.  The global RNG is unseeded
  (or seeded by someone else); deterministic components own a
  ``random.Random(seed)`` instance.
* **PL103** — iterating an unordered collection (``set``/``frozenset``
  construction, set algebra, ``dict.keys()``) in a loop whose body sends
  messages or publishes DHT state.  Python sets hash-order their elements,
  so two identical deployments emit the sends in different orders.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from repro.analysis.framework import (
    ModuleInfo,
    Rule,
    ScopeStack,
    call_attr,
    call_name,
)

#: Dotted call names that read the wall clock.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}

#: Calls on the *module* ``random`` (the process-global unseeded RNG).
GLOBAL_RANDOM_PREFIX = "random."
#: ``random.Random(...)`` / ``random.SystemRandom(...)`` construct a private
#: instance and are the sanctioned pattern.
RANDOM_FACTORIES = {"random.Random", "random.SystemRandom", "random.seed"}

#: Set-producing method calls (set algebra keeps hash order).
SET_ALGEBRA_METHODS = {
    "intersection", "union", "difference", "symmetric_difference",
}

#: ``.keys()``-style views: unordered across nodes when the dicts were
#: populated in different orders.
DICT_VIEW_METHODS = {"keys"}

#: Calls that make loop order observable on the network.
EFFECT_CALLS = {
    "send", "put", "put_batch", "put_chunk", "put_direct",
    "put_direct_batch", "multicast", "multicast_batch",
    "store", "store_batch",
}


class DeterminismRule(Rule):
    family = "determinism"
    scope_patterns = (
        "repro/core/*",
        "repro/core/*/*",
        "repro/dht/*",
        "repro/net/simulator.py",
    )

    def check_module(self, info: ModuleInfo) -> None:
        _DeterminismVisitor(self, info).visit(info.tree)


class _DeterminismVisitor(ScopeStack):
    def __init__(self, rule: DeterminismRule, info: ModuleInfo) -> None:
        super().__init__()
        self.rule = rule
        self.info = info
        #: names assigned from set-like expressions, per enclosing function.
        self._set_names: Dict[int, Set[str]] = {}

    # -- per-function set tracking ---------------------------------------

    def _visit_function(self, node: ast.AST) -> None:
        self._set_names[id(node)] = set()
        try:
            super()._visit_function(node)
        finally:
            self._set_names.pop(id(node), None)

    def _current_set_names(self) -> Optional[Set[str]]:
        if self._set_names:
            return next(reversed(self._set_names.values()))
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        names = self._current_set_names()
        if names is not None and self._is_set_like(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        self.generic_visit(node)

    # -- PL101 / PL102 ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None:
            if name in WALL_CLOCK_CALLS:
                self.rule.report(
                    self.info, node, "PL101",
                    f"wall-clock read {name}() in a simulator-reachable "
                    f"module; use the virtual clock (node/timers .now)",
                    detail=name, scope=self.scope)
            elif (name.startswith(GLOBAL_RANDOM_PREFIX)
                    and name not in RANDOM_FACTORIES):
                self.rule.report(
                    self.info, node, "PL102",
                    f"call to the process-global RNG ({name}); deterministic "
                    f"components must own a seeded random.Random instance",
                    detail=name, scope=self.scope)
        self.generic_visit(node)

    # -- PL103 ------------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._is_unordered_iter(node.iter):
            effect = self._first_effect_call(node.body)
            if effect is not None:
                iter_desc = self._describe_iter(node.iter)
                self.rule.report(
                    self.info, node, "PL103",
                    f"iterating {iter_desc} feeds {effect}(); set/dict-view "
                    f"order is nondeterministic across runs — sort first",
                    detail=f"{iter_desc}->{effect}", scope=self.scope)
        self.generic_visit(node)

    def _is_set_like(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in ("set", "frozenset"):
                return True
            attr = call_attr(node)
            if attr in SET_ALGEBRA_METHODS:
                return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
            # ``a & b`` / ``a - b`` over tracked set names
            names = self._current_set_names() or set()
            left = node.left.id if isinstance(node.left, ast.Name) else None
            right = node.right.id if isinstance(node.right, ast.Name) else None
            return left in names or right in names
        return False

    def _is_unordered_iter(self, node: ast.AST) -> bool:
        if self._is_set_like(node):
            return True
        if isinstance(node, ast.Call) and call_attr(node) in DICT_VIEW_METHODS:
            return True
        if isinstance(node, ast.Name):
            names = self._current_set_names()
            return names is not None and node.id in names
        return False

    def _describe_iter(self, node: ast.AST) -> str:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Call):
            attr = call_attr(node)
            if attr in DICT_VIEW_METHODS:
                return f".{attr}()"
            return f"{call_name(node) or attr}()"
        if isinstance(node, ast.Name):
            return f"set {node.id!r}"
        return "an unordered collection"

    def _first_effect_call(self, body: list) -> Optional[str]:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    attr = call_attr(node)
                    if attr in EFFECT_CALLS:
                        return attr
        return None
