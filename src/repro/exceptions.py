"""Exception hierarchy shared across the PIER reproduction.

Every error raised by the library derives from :class:`PierError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing subsystem-specific problems (network, DHT, query processing,
SQL parsing) when they need to.
"""

from __future__ import annotations


class PierError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class SimulationError(PierError):
    """Raised when the discrete-event simulator is used incorrectly."""


class NetworkError(PierError):
    """Raised for invalid network operations (unknown node, dead link...)."""


class NodeUnreachableError(NetworkError):
    """Raised when a message is addressed to a failed or unknown node."""


class GatewayError(NetworkError):
    """A gateway RPC was rejected with a structured error frame.

    ``code`` is the machine-readable error class carried in the frame
    (``"not_ready"``, ``"unknown_namespace"``, ``"internal"``, ...);
    subclasses pin it so clients can catch the specific condition.
    """

    code = "internal"

    def __init__(self, message: str, code: str = None):
        super().__init__(message)
        if code is not None:
            self.code = code


class NodeNotReadyError(GatewayError):
    """An operation reached a node whose overlay is still assembling."""

    code = "not_ready"


class UnknownNamespaceError(GatewayError):
    """A submitted query references a namespace no cluster node has data for."""

    code = "unknown_namespace"


class DHTError(PierError):
    """Base class for DHT-layer failures."""


class RoutingError(DHTError):
    """Raised when a key cannot be routed to an owner node."""


class StorageError(DHTError):
    """Raised by the storage manager for invalid store/retrieve operations."""


class NamespaceError(DHTError):
    """Raised when an operation references an unknown or invalid namespace."""


class SketchError(PierError):
    """Raised for invalid sketch configurations, payloads or merges."""


class QueryError(PierError):
    """Base class for query-processing failures."""


class PlanError(QueryError):
    """Raised when a query plan is malformed or cannot be instantiated."""


class SchemaError(QueryError):
    """Raised when tuples do not conform to their declared schema."""


class ExpressionError(QueryError):
    """Raised when an expression references unknown columns or types."""


class SQLSyntaxError(QueryError):
    """Raised by the SQL front end on malformed query text."""


class CatalogError(QueryError):
    """Raised when catalog lookups fail or definitions conflict."""


class WorkloadError(PierError):
    """Raised when a synthetic workload is configured inconsistently."""


class ExperimentError(PierError):
    """Raised by the experiment harness for invalid configurations."""
