"""Exception hierarchy shared across the PIER reproduction.

Every error raised by the library derives from :class:`PierError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing subsystem-specific problems (network, DHT, query processing,
SQL parsing) when they need to.
"""

from __future__ import annotations


class PierError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class SimulationError(PierError):
    """Raised when the discrete-event simulator is used incorrectly."""


class NetworkError(PierError):
    """Raised for invalid network operations (unknown node, dead link...)."""


class NodeUnreachableError(NetworkError):
    """Raised when a message is addressed to a failed or unknown node."""


class DHTError(PierError):
    """Base class for DHT-layer failures."""


class RoutingError(DHTError):
    """Raised when a key cannot be routed to an owner node."""


class StorageError(DHTError):
    """Raised by the storage manager for invalid store/retrieve operations."""


class NamespaceError(DHTError):
    """Raised when an operation references an unknown or invalid namespace."""


class SketchError(PierError):
    """Raised for invalid sketch configurations, payloads or merges."""


class QueryError(PierError):
    """Base class for query-processing failures."""


class PlanError(QueryError):
    """Raised when a query plan is malformed or cannot be instantiated."""


class SchemaError(QueryError):
    """Raised when tuples do not conform to their declared schema."""


class ExpressionError(QueryError):
    """Raised when an expression references unknown columns or types."""


class SQLSyntaxError(QueryError):
    """Raised by the SQL front end on malformed query text."""


class CatalogError(QueryError):
    """Raised when catalog lookups fail or definitions conflict."""


class WorkloadError(PierError):
    """Raised when a synthetic workload is configured inconsistently."""


class ExperimentError(PierError):
    """Raised by the experiment harness for invalid configurations."""
