"""Storage manager: per-node temporary storage of DHT items (paper Table 2).

The paper expects nothing more of the storage manager than main-memory
performance that keeps up with the network, and uses a main-memory
implementation; so do we.  Items are addressed by the full
``(namespace, resourceID, instanceID)`` triple and carry an expiry time for
soft state.  Secondary indexes by namespace and by ``(namespace,
resourceID)`` support the Provider's ``lscan`` and ``get`` operations
without full scans.

Expiry is enforced lazily on every read and eagerly by
:meth:`StorageManager.expire_items`, which the Provider calls from a periodic
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.exceptions import StorageError

ItemKey = Tuple[str, Any, int]


@dataclass
class StoredItem:
    """One item held by the storage manager.

    Attributes
    ----------
    namespace, resource_id, instance_id:
        The DHT naming triple (paper Section 3.2.3).
    value:
        Application payload (typically a tuple or a Bloom filter).
    key:
        The flat DHT key derived from ``(namespace, resource_id)``; kept so
        the routing layer can decide which items migrate on join/leave.
    expires_at:
        Virtual time after which the item is no longer visible (soft state).
    stored_at:
        Virtual time at which the item was (last) stored or renewed.
    publisher:
        Address of the node that published the item, used by the recall
        metric and by renewal bookkeeping.
    size_bytes:
        Wire size used when the item is shipped between nodes.
    """

    namespace: str
    resource_id: Any
    instance_id: int
    value: Any
    key: int
    expires_at: float
    stored_at: float = 0.0
    publisher: Optional[int] = None
    size_bytes: int = 100

    @property
    def item_key(self) -> ItemKey:
        """The full identifying triple."""
        return (self.namespace, self.resource_id, self.instance_id)

    def is_expired(self, now: float) -> bool:
        """Whether the item's lifetime has elapsed."""
        return now > self.expires_at


class StorageManager:
    """Main-memory store with namespace and resource indexes."""

    def __init__(self) -> None:
        self._items: Dict[ItemKey, StoredItem] = {}
        self._by_namespace: Dict[str, Set[ItemKey]] = {}
        self._by_resource: Dict[Tuple[str, Any], Set[ItemKey]] = {}

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------ core

    def store(self, item: StoredItem) -> None:
        """Insert or overwrite an item (paper Table 2 ``store``)."""
        if not isinstance(item, StoredItem):
            raise StorageError(f"can only store StoredItem instances, got {type(item)!r}")
        key = item.item_key
        self._items[key] = item
        self._by_namespace.setdefault(item.namespace, set()).add(key)
        self._by_resource.setdefault((item.namespace, item.resource_id), set()).add(key)

    def retrieve(self, namespace: str, resource_id: Any, now: float) -> List[StoredItem]:
        """All live items matching ``(namespace, resourceID)`` (``retrieve``)."""
        keys = self._by_resource.get((namespace, resource_id), set())
        results = []
        expired = []
        for key in keys:
            item = self._items[key]
            if item.is_expired(now):
                expired.append(key)
            else:
                results.append(item)
        for key in expired:
            self._remove_key(key)
        return results

    def remove(self, namespace: str, resource_id: Any,
               instance_id: Optional[int] = None) -> int:
        """Remove matching item(s); returns the number removed (``remove``)."""
        if instance_id is not None:
            key = (namespace, resource_id, instance_id)
            if key in self._items:
                self._remove_key(key)
                return 1
            return 0
        keys = list(self._by_resource.get((namespace, resource_id), set()))
        for key in keys:
            self._remove_key(key)
        return len(keys)

    def _remove_key(self, key: ItemKey) -> None:
        item = self._items.pop(key, None)
        if item is None:
            return
        namespace_keys = self._by_namespace.get(item.namespace)
        if namespace_keys is not None:
            namespace_keys.discard(key)
            if not namespace_keys:
                del self._by_namespace[item.namespace]
        resource_keys = self._by_resource.get((item.namespace, item.resource_id))
        if resource_keys is not None:
            resource_keys.discard(key)
            if not resource_keys:
                del self._by_resource[(item.namespace, item.resource_id)]

    # ------------------------------------------------------------- iteration

    def scan(self, namespace: str, now: float) -> Iterator[StoredItem]:
        """Iterate over live items of a namespace (backs the Provider ``lscan``)."""
        keys = list(self._by_namespace.get(namespace, set()))
        for key in keys:
            item = self._items.get(key)
            if item is None:
                continue
            if item.is_expired(now):
                self._remove_key(key)
                continue
            yield item

    def namespaces(self) -> List[str]:
        """Namespaces that currently hold at least one item."""
        return sorted(self._by_namespace)

    def count(self, namespace: str, now: Optional[float] = None) -> int:
        """Number of items in a namespace (live items only when ``now`` given)."""
        if now is None:
            return len(self._by_namespace.get(namespace, set()))
        return sum(1 for _item in self.scan(namespace, now))

    def purge_namespace(self, namespace: str) -> int:
        """Remove every item of ``namespace``; returns the number removed.

        Query teardown uses this to reclaim temporary per-query namespaces
        (rehash fragments, Bloom filters, partial aggregates) without
        waiting for their soft-state lifetimes to elapse.
        """
        keys = list(self._by_namespace.get(namespace, set()))
        for key in keys:
            self._remove_key(key)
        return len(keys)

    # ------------------------------------------------------------- soft state

    def expire_items(self, now: float) -> int:
        """Drop every expired item; returns the number dropped."""
        expired = [key for key, item in self._items.items() if item.is_expired(now)]
        for key in expired:
            self._remove_key(key)
        return len(expired)

    # ------------------------------------------------------------- migration

    def extract(self, predicate: Callable[[int], bool]) -> List[StoredItem]:
        """Remove and return items whose DHT key satisfies ``predicate``.

        Used by the routing layer to hand items to a new zone owner on
        join/leave.
        """
        moving = [item for item in self._items.values() if predicate(item.key)]
        for item in moving:
            self._remove_key(item.item_key)
        return moving

    def install(self, items: List[StoredItem]) -> None:
        """Install items received from another node."""
        for item in items:
            self.store(item)

    def clear(self) -> int:
        """Drop everything (used when a node fails); returns items dropped."""
        dropped = len(self._items)
        self._items.clear()
        self._by_namespace.clear()
        self._by_resource.clear()
        return dropped
