"""Storage manager: per-node temporary storage of DHT items (paper Table 2).

The paper expects nothing more of the storage manager than main-memory
performance that keeps up with the network, and uses a main-memory
implementation; so do we.  Items are addressed by the full
``(namespace, resourceID, instanceID)`` triple and carry an expiry time for
soft state.  Secondary indexes by namespace and by ``(namespace,
resourceID)`` support the Provider's ``lscan`` and ``get`` operations
without full scans.

Expiry is driven by a lazily-compacted min-heap of ``(expires_at, item_key)``
entries: :meth:`StorageManager.expire_items` pops only entries whose deadline
has passed, so every read path (``retrieve``/``scan``/``count``) runs it
first and then serves straight from the indexes — the work done is
proportional to what actually expired, never to the store size.  Entries go
stale when an item is overwritten (renewal) or removed; stale entries are
skipped on pop and the heap is rebuilt once they outnumber the live items.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import StorageError

ItemKey = Tuple[str, Any, int]


@dataclass
class StoredItem:
    """One item held by the storage manager.

    Attributes
    ----------
    namespace, resource_id, instance_id:
        The DHT naming triple (paper Section 3.2.3).
    value:
        Application payload (typically a tuple or a Bloom filter).
    key:
        The flat DHT key derived from ``(namespace, resource_id)``; kept so
        the routing layer can decide which items migrate on join/leave.
    expires_at:
        Virtual time after which the item is no longer visible (soft state).
    stored_at:
        Virtual time at which the item was (last) stored or renewed.
    publisher:
        Address of the node that published the item, used by the recall
        metric and by renewal bookkeeping.
    size_bytes:
        Wire size used when the item is shipped between nodes.
    """

    namespace: str
    resource_id: Any
    instance_id: int
    value: Any
    key: int
    expires_at: float
    stored_at: float = 0.0
    publisher: Optional[int] = None
    size_bytes: int = 100

    @property
    def item_key(self) -> ItemKey:
        """The full identifying triple."""
        return (self.namespace, self.resource_id, self.instance_id)

    def is_expired(self, now: float) -> bool:
        """Whether the item's lifetime has elapsed."""
        return now > self.expires_at


class StorageManager:
    """Main-memory store with namespace, resource and expiry indexes."""

    #: Minimum garbage before a heap rebuild is worth considering.
    _COMPACT_FLOOR = 64

    def __init__(self) -> None:
        self._items: Dict[ItemKey, StoredItem] = {}
        self._by_namespace: Dict[str, Set[ItemKey]] = {}
        self._by_resource: Dict[Tuple[str, Any], Set[ItemKey]] = {}
        #: Min-heap of ``(expires_at, seq, item_key)``; ``seq`` breaks ties so
        #: heterogeneous resource ids are never compared.
        self._expiry_heap: List[Tuple[float, int, ItemKey]] = []
        self._heap_seq = itertools.count()
        #: Heap entries no longer backed by a live ``(key, expires_at)`` pair.
        self._heap_stale = 0

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------ core

    def store(self, item: StoredItem) -> None:
        """Insert or overwrite an item (paper Table 2 ``store``)."""
        if not isinstance(item, StoredItem):
            raise StorageError(f"can only store StoredItem instances, got {type(item)!r}")
        key = item.item_key
        if key in self._items:
            self._items[key] = item
            self._heap_stale += 1  # the overwritten item's heap entry
        else:
            self._items[key] = item
            self._by_namespace.setdefault(item.namespace, set()).add(key)
            self._by_resource.setdefault((item.namespace, item.resource_id), set()).add(key)
        heapq.heappush(self._expiry_heap,
                       (item.expires_at, next(self._heap_seq), key))

    def store_batch(self, items: Iterable[StoredItem]) -> None:
        """Insert many items with grouped index updates (hot ingestion path).

        Batched ``put`` delivery and join/leave migration hand whole groups
        of items to one node; updating the namespace/resource sets per group
        instead of per item avoids repeated hashing of the same index keys.
        """
        items = list(items)
        for item in items:  # validate up front: never mutate a partial batch
            if not isinstance(item, StoredItem):
                raise StorageError(
                    f"can only store StoredItem instances, got {type(item)!r}"
                )
        heap = self._expiry_heap
        stored = self._items
        by_namespace: Dict[str, List[ItemKey]] = {}
        by_resource: Dict[Tuple[str, Any], List[ItemKey]] = {}
        for item in items:
            key = item.item_key
            if key in stored:
                self._heap_stale += 1
            else:
                by_namespace.setdefault(item.namespace, []).append(key)
                by_resource.setdefault(
                    (item.namespace, item.resource_id), []).append(key)
            stored[key] = item
            heapq.heappush(heap, (item.expires_at, next(self._heap_seq), key))
        for namespace, keys in by_namespace.items():
            self._by_namespace.setdefault(namespace, set()).update(keys)
        for resource, keys in by_resource.items():
            self._by_resource.setdefault(resource, set()).update(keys)

    def retrieve(self, namespace: str, resource_id: Any, now: float) -> List[StoredItem]:
        """All live items matching ``(namespace, resourceID)`` (``retrieve``)."""
        self.expire_items(now)
        keys = self._by_resource.get((namespace, resource_id))
        if not keys:
            return []
        items = self._items
        return [items[key] for key in keys]

    def has_instance(self, namespace: str, resource_id: Any, instance_id: int,
                     now: float) -> bool:
        """Whether the exact live triple is currently stored.

        The Provider's ``newData`` suppression check; unlike
        :meth:`retrieve` it materialises nothing.
        """
        self.expire_items(now)
        return (namespace, resource_id, instance_id) in self._items

    def remove(self, namespace: str, resource_id: Any,
               instance_id: Optional[int] = None) -> int:
        """Remove matching item(s); returns the number removed (``remove``)."""
        if instance_id is not None:
            key = (namespace, resource_id, instance_id)
            if key in self._items:
                self._remove_key(key)
                return 1
            return 0
        keys = list(self._by_resource.get((namespace, resource_id), set()))
        for key in keys:
            self._remove_key(key)
        return len(keys)

    def _remove_key(self, key: ItemKey) -> None:
        item = self._items.pop(key, None)
        if item is None:
            return
        self._heap_stale += 1  # the removed item's heap entry lingers
        namespace_keys = self._by_namespace.get(item.namespace)
        if namespace_keys is not None:
            namespace_keys.discard(key)
            if not namespace_keys:
                del self._by_namespace[item.namespace]
        resource_keys = self._by_resource.get((item.namespace, item.resource_id))
        if resource_keys is not None:
            resource_keys.discard(key)
            if not resource_keys:
                del self._by_resource[(item.namespace, item.resource_id)]

    # ------------------------------------------------------------- iteration

    def scan(self, namespace: str, now: float) -> Iterator[StoredItem]:
        """Iterate over live items of a namespace (backs the Provider ``lscan``).

        Expiry runs once up front (heap-indexed, proportional to what
        expired); the iteration itself does no per-item deadline checks.
        The key list is snapshotted so consumers may store/remove while
        iterating.
        """
        self.expire_items(now)
        keys = self._by_namespace.get(namespace)
        if not keys:
            return
        items = self._items
        for key in list(keys):
            item = items.get(key)
            if item is not None:
                yield item

    def namespaces(self) -> List[str]:
        """Namespaces that currently hold at least one item."""
        return sorted(self._by_namespace)

    def count(self, namespace: str, now: Optional[float] = None) -> int:
        """Number of items in a namespace (live items only when ``now`` given).

        With ``now`` this expires what is due and then reads the namespace
        index's size — no items are materialised or yielded.
        """
        if now is not None:
            self.expire_items(now)
        return len(self._by_namespace.get(namespace, ()))

    def purge_namespace(self, namespace: str) -> int:
        """Remove every item of ``namespace``; returns the number removed.

        Query teardown uses this to reclaim temporary per-query namespaces
        (rehash fragments, Bloom filters, partial aggregates) without
        waiting for their soft-state lifetimes to elapse.
        """
        keys = list(self._by_namespace.get(namespace, set()))
        for key in keys:
            self._remove_key(key)
        return len(keys)

    def purge_publisher(self, namespace: str, publisher: int) -> int:
        """Drop every item of ``namespace`` published by ``publisher``.

        Failure-aware soft-state purge: when a node's failure is detected,
        state it published into control namespaces (statistics, catalog
        partials) describes data that died with it — purging immediately
        stops a dead publisher's partials from poisoning planning decisions
        until their lifetime happens to elapse.  Returns the number removed.
        """
        keys = [
            key for key in self._by_namespace.get(namespace, ())
            if self._items[key].publisher == publisher
        ]
        for key in keys:
            self._remove_key(key)
        return len(keys)

    # ------------------------------------------------------------- soft state

    def expire_items(self, now: float) -> int:
        """Drop every expired item; returns the number dropped.

        Pops the expiry heap only while its head deadline has passed, so the
        cost is O(dropped · log n) plus any stale entries consumed along the
        way — independent of how many live items the store holds.
        """
        heap = self._expiry_heap
        items = self._items
        dropped = 0
        while heap and heap[0][0] < now:
            expires_at, _seq, key = heapq.heappop(heap)
            item = items.get(key)
            if item is None or item.expires_at != expires_at:
                self._heap_stale -= 1  # consumed a stale entry
                continue
            self._remove_key(key)
            self._heap_stale -= 1  # ... but its entry was just popped
            dropped += 1
        if (self._heap_stale > self._COMPACT_FLOOR
                and self._heap_stale > len(items)):
            self._compact_heap()
        return dropped

    def _compact_heap(self) -> None:
        """Rebuild the expiry heap from live items only (lazy compaction)."""
        self._expiry_heap = [
            (item.expires_at, next(self._heap_seq), key)
            for key, item in self._items.items()
        ]
        heapq.heapify(self._expiry_heap)
        self._heap_stale = 0

    # ------------------------------------------------------------- migration

    def extract(self, predicate: Callable[[int], bool]) -> List[StoredItem]:
        """Remove and return items whose DHT key satisfies ``predicate``.

        Used by the routing layer to hand items to a new zone owner on
        join/leave.
        """
        moving = [item for item in self._items.values() if predicate(item.key)]
        for item in moving:
            self._remove_key(item.item_key)
        return moving

    def install(self, items: List[StoredItem]) -> None:
        """Install items received from another node."""
        self.store_batch(items)

    def clear(self) -> int:
        """Drop everything (used when a node fails); returns items dropped."""
        dropped = len(self._items)
        self._items.clear()
        self._by_namespace.clear()
        self._by_resource.clear()
        self._expiry_heap.clear()
        self._heap_stale = 0
        return dropped
