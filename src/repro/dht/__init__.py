"""DHT substrate: routing layer, storage manager and provider.

This package mirrors the three-layer DHT decomposition of the paper's
Section 3.2:

* **Routing layer** (:mod:`repro.dht.api`, :mod:`repro.dht.can`,
  :mod:`repro.dht.chord`) — ``lookup``/``join``/``leave`` plus the
  ``locationMapChange`` callback (paper Table 1).  CAN is the primary DHT;
  Chord is the alternative the paper ports PIER onto as a validation
  exercise.
* **Storage manager** (:mod:`repro.dht.storage`) — per-node temporary
  storage (paper Table 2).
* **Provider** (:mod:`repro.dht.provider`) — the application-facing
  interface (paper Table 3): ``get``/``put``/``renew``/``multicast``/
  ``lscan``/``newData``, the namespace/resourceID/instanceID naming scheme
  and soft-state lifetimes.
"""

from repro.dht.api import RoutingLayer
from repro.dht.naming import hash_key, KEY_BITS, KEY_SPACE
from repro.dht.can import CanRouting, CanNetworkBuilder, Zone
from repro.dht.chord import ChordRouting, ChordNetworkBuilder
from repro.dht.storage import StorageManager, StoredItem
from repro.dht.provider import Provider, DHTItem
from repro.dht.softstate import RenewalAgent
from repro.dht.multicast import MulticastService

__all__ = [
    "RoutingLayer",
    "hash_key",
    "KEY_BITS",
    "KEY_SPACE",
    "CanRouting",
    "CanNetworkBuilder",
    "Zone",
    "ChordRouting",
    "ChordNetworkBuilder",
    "StorageManager",
    "StoredItem",
    "Provider",
    "DHTItem",
    "RenewalAgent",
    "MulticastService",
]
