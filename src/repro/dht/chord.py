"""Chord routing layer (Stoica et al., SIGCOMM 2001).

The paper validates PIER's DHT-agnostic design by deploying it over Chord
"with a fairly minimal integration effort"; this module provides that
alternative.  Nodes are placed on a ``2^m`` identifier ring by hashing their
address; a key is owned by its *successor* (the first node clockwise from the
key).  Each node keeps a successor pointer, a predecessor pointer and an
``m``-entry finger table; greedy routing through fingers resolves a lookup in
``O(log n)`` hops, which is the "logarithmic growth" alternative the paper
points to when discussing CAN's ``n^{1/2}`` hop count.

As with CAN, both a message-level join protocol and a bulk stabilised
builder are provided; the bulk builder computes successors and finger tables
directly from the sorted identifier list.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Dict, List, Optional, Sequence

from repro.dht.api import LookupCallback, RoutingLayer
from repro.dht.naming import KEY_BITS, node_identifier
from repro.net.network import Network
from repro.net.node import Node

#: Wire size (bytes) of a routed lookup / control hop.
ROUTE_HOP_BYTES = 40

#: Safety valve: routed messages are dropped after this many overlay hops.
MAX_ROUTE_HOPS = 128


def _in_interval(value: int, start: int, end: int, inclusive_end: bool = False) -> bool:
    """Whether ``value`` lies in the clockwise ring interval ``(start, end)``.

    Ring intervals wrap around zero; ``inclusive_end`` makes the interval
    half-closed ``(start, end]`` which is the ownership rule of Chord.
    """
    if start == end:
        # The whole ring (single-node case).
        return True if not inclusive_end else True
    if start < end:
        return start < value < end or (inclusive_end and value == end)
    return value > start or value < end or (inclusive_end and value == end)


class ChordRouting(RoutingLayer):
    """Chord routing layer instance bound to one node."""

    PROTOCOL_ROUTE = "chord.route"
    PROTOCOL_ROUTE_BATCH = "chord.route_batch"
    PROTOCOL_LOOKUP_REPLY = "chord.lookup_reply"
    PROTOCOL_BATCH_LOOKUP_REPLY = "chord.batch_lookup_reply"
    PROTOCOL_JOIN_REPLY = "chord.join_reply"
    PROTOCOL_NOTIFY = "chord.notify"
    PROTOCOL_LEAVE = "chord.leave"

    def __init__(self, node: Node, key_bits: int = KEY_BITS):
        super().__init__(node)
        self.key_bits = key_bits
        self.identifier = node_identifier(node.address) % (1 << key_bits)
        self.successor: Optional[int] = None
        self.predecessor: Optional[int] = None
        #: finger index -> (identifier, address) of the finger node.
        self.fingers: List[Optional[tuple]] = [None] * key_bits
        self._ids: Dict[int, int] = {}  # address -> identifier cache
        self._dead: set[int] = set()
        self._pending_lookups: Dict[int, LookupCallback] = {}
        self._lookup_ids = itertools.count(1)
        self.extract_items = None
        self.install_items = None

        node.register_handler(self.PROTOCOL_ROUTE, self._on_route)
        node.register_handler(self.PROTOCOL_ROUTE_BATCH, self._on_route_batch)
        node.register_handler(self.PROTOCOL_LOOKUP_REPLY, self._on_lookup_reply)
        node.register_handler(self.PROTOCOL_BATCH_LOOKUP_REPLY,
                              self._on_batch_lookup_reply)
        node.register_handler(self.PROTOCOL_JOIN_REPLY, self._on_join_reply)
        node.register_handler(self.PROTOCOL_NOTIFY, self._on_notify)
        node.register_handler(self.PROTOCOL_LEAVE, self._on_leave)
        node.register_bounce_handler(self.PROTOCOL_ROUTE, self._on_route_bounce)
        node.register_bounce_handler(self.PROTOCOL_ROUTE_BATCH,
                                     self._on_route_batch_bounce)

    # --------------------------------------------------------------- helpers

    def _identifier_of(self, address: int) -> int:
        if address not in self._ids:
            self._ids[address] = node_identifier(address) % (1 << self.key_bits)
        return self._ids[address]

    def ring_key(self, key: int) -> int:
        """Project a flat DHT key onto this ring."""
        return key % (1 << self.key_bits)

    def owns(self, key: int) -> bool:
        ring_key = self.ring_key(key)
        if self.predecessor is None:
            return True
        return _in_interval(
            ring_key, self._identifier_of(self.predecessor), self.identifier,
            inclusive_end=True,
        )

    def neighbors(self) -> List[int]:
        addresses = set()
        if self.successor is not None:
            addresses.add(self.successor)
        if self.predecessor is not None:
            addresses.add(self.predecessor)
        for finger in self.fingers:
            if finger is not None:
                addresses.add(finger[1])
        addresses.discard(self.address)
        return [address for address in sorted(addresses) if address not in self._dead]

    def mark_neighbor_dead(self, address: int) -> None:
        """Record a detected neighbour failure; routing avoids it afterwards."""
        self._dead.add(address)

    def mark_neighbor_alive(self, address: int) -> None:
        """Clear a previously-detected neighbour failure."""
        self._dead.discard(address)

    # ---------------------------------------------------------------- lookup

    def lookup(self, key: int, callback: LookupCallback,
               payload_bytes: int = ROUTE_HOP_BYTES) -> None:
        if self.owns(key):
            callback(self.address)
            return
        request_id = next(self._lookup_ids)
        self._pending_lookups[request_id] = callback
        payload = {
            "kind": "lookup",
            "ring_key": self.ring_key(key),
            "origin": self.address,
            "request_id": request_id,
        }
        self._forward(payload, payload_bytes, hops=0)

    def _closest_preceding(self, ring_key: int) -> Optional[int]:
        """Finger (or successor) closest to, but preceding, ``ring_key``."""
        candidates = []
        for finger in self.fingers:
            if finger is None:
                continue
            identifier, address = finger
            if address in self._dead or address == self.address:
                continue
            candidates.append((identifier, address))
        if self.successor is not None and self.successor not in self._dead:
            candidates.append((self._identifier_of(self.successor), self.successor))
        best = None
        for identifier, address in candidates:
            if _in_interval(identifier, self.identifier, ring_key) and (
                    best is None or _in_interval(identifier, best[0], ring_key)):
                best = (identifier, address)
        if best is not None:
            return best[1]
        if self.successor is not None and self.successor not in self._dead:
            return self.successor
        return None

    def _forward(self, payload: dict, payload_bytes: int, hops: int) -> None:
        if hops >= MAX_ROUTE_HOPS:
            return
        next_hop = self._closest_preceding(payload["ring_key"])
        if next_hop is None or next_hop == self.address:
            return
        self.node.send(
            next_hop,
            self.PROTOCOL_ROUTE,
            payload=payload,
            payload_bytes=payload_bytes,
            hops=hops + 1,
        )

    def _on_route(self, node: Node, message) -> None:
        payload = message.payload
        ring_key = payload["ring_key"]
        if not self.owns(ring_key):
            self._forward(payload, message.payload_bytes, message.hops)
            return
        kind = payload["kind"]
        if kind == "lookup":
            node.send(
                payload["origin"],
                self.PROTOCOL_LOOKUP_REPLY,
                payload={
                    "request_id": payload["request_id"],
                    "owner": self.address,
                    "hops": message.hops,
                },
                payload_bytes=ROUTE_HOP_BYTES,
            )
        elif kind == "join":
            self._handle_join_request(payload)

    def _on_route_bounce(self, node: Node, message) -> None:
        """A routed hop hit a dead node: mark it dead and re-route around it."""
        self.mark_neighbor_dead(message.dst)
        self._forward(message.payload, message.payload_bytes, message.hops)

    def _on_lookup_reply(self, node: Node, message) -> None:
        payload = message.payload
        callback = self._pending_lookups.pop(payload["request_id"], None)
        if callback is None:
            return
        self.lookup_hops_observed.append(payload.get("hops", 0))
        callback(payload["owner"])

    # -------------------------------------------- batch lookup geometry hooks
    # The generic batch machinery (request bookkeeping, per-hop partitioning,
    # owner replies, unresolved-key reporting) lives in RoutingLayer.

    def _batch_entry(self, key: int) -> dict:
        return {"key": key, "ring_key": self.ring_key(key)}

    def _batch_entry_owned(self, entry: dict) -> bool:
        return self.owns(entry["ring_key"])

    def _batch_next_hop(self, entry: dict, exclude: Optional[int]) -> Optional[int]:
        # Chord's finger geometry has no source to avoid; dead nodes are
        # already excluded inside _closest_preceding.
        next_hop = self._closest_preceding(entry["ring_key"])
        if next_hop == self.address:
            return None
        return next_hop

    # --------------------------------------------------------------- joining

    def create_network(self) -> None:
        """Become the only node on a new ring."""
        self.successor = self.address
        self.predecessor = self.address
        self.fingers = [(self.identifier, self.address)] * self.key_bits
        self.notify_location_map_change()

    def join(self, landmark: Optional[int]) -> None:
        if landmark is None:
            self.create_network()
            return
        payload = {
            "kind": "join",
            "ring_key": self.identifier,
            "origin": self.address,
        }
        self.node.send(
            landmark,
            self.PROTOCOL_ROUTE,
            payload=payload,
            payload_bytes=ROUTE_HOP_BYTES,
        )

    def _handle_join_request(self, payload: dict) -> None:
        """This node is the joiner's successor; splice it in before us."""
        joiner = payload["origin"]
        joiner_id = payload["ring_key"]
        old_predecessor = self.predecessor
        items: list = []
        if self.extract_items is not None:
            # Keys in (old_predecessor, joiner_id] move to the joiner.
            def _moves(key: int) -> bool:
                ring_key = self.ring_key(key)
                start = self._identifier_of(old_predecessor) if old_predecessor is not None else joiner_id
                return _in_interval(ring_key, start, joiner_id, inclusive_end=True)

            items = self.extract_items(_moves)
        self.predecessor = joiner
        self._ids[joiner] = joiner_id
        item_bytes = sum(getattr(item, "size_bytes", 100) for item in items)
        self.node.send(
            joiner,
            self.PROTOCOL_JOIN_REPLY,
            payload={
                "successor": self.address,
                "predecessor": old_predecessor,
                "items": items,
            },
            payload_bytes=200 + item_bytes,
        )
        self.notify_location_map_change()

    def _on_join_reply(self, node: Node, message) -> None:
        payload = message.payload
        self.successor = payload["successor"]
        self.predecessor = payload["predecessor"]
        self.fingers = [(self._identifier_of(self.successor), self.successor)] * self.key_bits
        if self.install_items is not None and payload["items"]:
            self.install_items(payload["items"])
        if self.predecessor is not None and self.predecessor != self.address:
            self.node.send(
                self.predecessor,
                self.PROTOCOL_NOTIFY,
                payload={"successor": self.address},
                payload_bytes=ROUTE_HOP_BYTES,
            )
        self.notify_location_map_change()

    def _on_notify(self, node: Node, message) -> None:
        self.successor = message.payload["successor"]

    # ---------------------------------------------------------------- leaving

    def leave(self) -> None:
        """Hand stored items to the successor and splice out of the ring."""
        if self.successor is None or self.successor == self.address:
            self.successor = None
            self.predecessor = None
            self.notify_location_map_change()
            return
        items: list = []
        if self.extract_items is not None:
            items = self.extract_items(lambda key: True)
        item_bytes = sum(getattr(item, "size_bytes", 100) for item in items)
        self.node.send(
            self.successor,
            self.PROTOCOL_LEAVE,
            payload={
                "departing": self.address,
                "predecessor": self.predecessor,
                "items": items,
            },
            payload_bytes=200 + item_bytes,
        )
        if self.predecessor is not None and self.predecessor != self.address:
            self.node.send(
                self.predecessor,
                self.PROTOCOL_NOTIFY,
                payload={"successor": self.successor},
                payload_bytes=ROUTE_HOP_BYTES,
            )
        self.successor = None
        self.predecessor = None
        self.notify_location_map_change()

    def _on_leave(self, node: Node, message) -> None:
        payload = message.payload
        self.predecessor = payload["predecessor"]
        if self.install_items is not None and payload["items"]:
            self.install_items(payload["items"])
        self.notify_location_map_change()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChordRouting(addr={self.address}, id={self.identifier:#x}, "
            f"succ={self.successor}, pred={self.predecessor})"
        )


class ChordNetworkBuilder:
    """Construct a stabilised Chord ring over every node of a network."""

    def __init__(self, key_bits: int = KEY_BITS):
        self.key_bits = key_bits
        self._ring: Optional[List[tuple]] = None

    def build_stabilized(self, network: Network,
                         addresses: Optional[Sequence[int]] = None
                         ) -> Dict[int, ChordRouting]:
        """Install a fully-stabilised ring (successors, predecessors, fingers)."""
        if addresses is None:
            addresses = list(range(network.num_nodes))
        addresses = list(addresses)
        routings = {
            address: ChordRouting(network.node(address), key_bits=self.key_bits)
            for address in addresses
        }
        ring = sorted(
            (routing.identifier, address) for address, routing in routings.items()
        )
        identifiers = [identifier for identifier, _address in ring]
        count = len(ring)
        modulus = 1 << self.key_bits

        for position, (identifier, address) in enumerate(ring):
            routing = routings[address]
            successor_id, successor_addr = ring[(position + 1) % count]
            predecessor_id, predecessor_addr = ring[(position - 1) % count]
            routing.successor = successor_addr
            routing.predecessor = predecessor_addr
            fingers: List[Optional[tuple]] = []
            for finger_index in range(self.key_bits):
                target = (identifier + (1 << finger_index)) % modulus
                position_in_ring = bisect.bisect_left(identifiers, target) % count
                fingers.append(ring[position_in_ring])
            routing.fingers = fingers
        self._ring = ring
        return routings

    # --------------------------------------------------------- owner lookup

    def owner_of_key(self, key: int) -> int:
        """Address of the node owning ``key`` in the last built ring."""
        if not self._ring:
            raise RuntimeError("owner_of_key() requires build_stabilized() first")
        ring_key = key % (1 << self.key_bits)
        identifiers = [identifier for identifier, _address in self._ring]
        position = bisect.bisect_left(identifiers, ring_key) % len(self._ring)
        return self._ring[position][1]
