"""Content-based multicast over the overlay (paper Section 3.2.3, ref [18]).

PIER distributes query instructions to every node serving a namespace with a
``multicast`` primitive.  The paper's companion tech report compares several
implementation options; what matters to the evaluation is only that the
multicast reaches every node in a few seconds (about 3 s at 1024 nodes with
100 ms hops) and that its cost is independent of the query itself.

We implement the classic overlay flood: the originator delivers the payload
locally and forwards it to all of its overlay neighbours; every node, on
first receipt of a given multicast id, delivers the payload to the
application and forwards it to its own neighbours (excluding the sender).
Duplicate receipts are suppressed.  Over CAN's neighbour graph this reaches
all nodes within the overlay diameter (``O(n^{1/d})`` hops); over Chord's
finger graph the depth is ``O(log n)``.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.dht.api import RoutingLayer
from repro.net.node import Node

#: Handler signature: (namespace, resource_id, item, origin_address).
MulticastHandler = Callable[[str, Any, Any, int], None]

_multicast_sequence = itertools.count(1)


class MulticastService:
    """Per-node multicast service using neighbour flooding with dedup."""

    PROTOCOL = "mc.flood"

    def __init__(self, node: Node, routing: RoutingLayer):
        self.node = node
        self.routing = routing
        self._seen: set[Tuple[int, int]] = set()
        self._handlers: Dict[str, List[MulticastHandler]] = {}
        self._wildcard_handlers: List[MulticastHandler] = []
        #: Envelope ids this node already re-flooded after a bounce (one
        #: failure-repair wave per envelope per node keeps floods bounded).
        self._reflooded: set[Tuple[int, int]] = set()
        #: Flood messages bounced off dead neighbours (ops/completeness).
        self.flood_bounces = 0
        node.register_handler(self.PROTOCOL, self._on_flood)
        node.register_bounce_handler(self.PROTOCOL, self._on_flood_bounce)
        node.services["dht.multicast"] = self

    # ----------------------------------------------------------- subscription

    def subscribe(self, namespace: str, handler: MulticastHandler) -> None:
        """Deliver multicasts for ``namespace`` to ``handler`` on this node."""
        self._handlers.setdefault(namespace, []).append(handler)

    def subscribe_all(self, handler: MulticastHandler) -> None:
        """Deliver every multicast (any namespace) to ``handler``."""
        self._wildcard_handlers.append(handler)

    def unsubscribe(self, namespace: str, handler: MulticastHandler) -> bool:
        """Remove a handler previously registered with :meth:`subscribe`.

        Returns whether the handler was found.  Query teardown uses this to
        drop per-query subscriptions (e.g. Bloom summary distribution).
        """
        handlers = self._handlers.get(namespace)
        if not handlers or handler not in handlers:
            return False
        handlers.remove(handler)
        if not handlers:
            del self._handlers[namespace]
        return True

    def subscriber_count(self, namespace: str) -> int:
        """Number of handlers subscribed to ``namespace`` (tests/ops)."""
        return len(self._handlers.get(namespace, ()))

    # ----------------------------------------------------------------- send

    def multicast(self, namespace: str, resource_id: Any, item: Any,
                  payload_bytes: int = 200) -> int:
        """Originate a multicast; returns the multicast id."""
        return self.multicast_batch([(namespace, resource_id, item)],
                                    payload_bytes=payload_bytes)

    def multicast_batch(self, entries: Sequence[Tuple[str, Any, Any]],
                        payload_bytes: int = 200) -> int:
        """Originate one flood carrying several (namespace, resourceID, item) entries.

        The whole batch shares a single envelope — and therefore a single
        flood wave over the overlay — instead of one flood per entry;
        ``payload_bytes`` is the combined wire size of all entries.  Handlers
        still fire once per entry on every receiving node, in entry order.
        """
        if not entries:
            raise ValueError("multicast_batch needs at least one entry")
        multicast_id = (self.node.address, next(_multicast_sequence))
        envelope = {
            "id": multicast_id,
            "entries": [
                {"namespace": namespace, "resource_id": resource_id, "item": item}
                for namespace, resource_id, item in entries
            ],
            "origin": self.node.address,
        }
        self._seen.add(multicast_id)
        self._deliver(envelope)
        self._flood(envelope, payload_bytes, exclude=None)
        return multicast_id[1]

    def _flood(self, envelope: dict, payload_bytes: int, exclude) -> None:
        for neighbor in self.routing.neighbors():
            if neighbor == exclude or neighbor == self.node.address:
                continue
            self.node.send(
                neighbor,
                self.PROTOCOL,
                payload={"envelope": envelope, "payload_bytes": payload_bytes},
                payload_bytes=payload_bytes,
            )

    def _on_flood(self, node: Node, message) -> None:
        envelope = message.payload["envelope"]
        payload_bytes = message.payload["payload_bytes"]
        multicast_id = envelope["id"]
        if multicast_id in self._seen:
            return
        self._seen.add(multicast_id)
        self._deliver(envelope)
        self._flood(envelope, payload_bytes, exclude=message.src)

    def _on_flood_bounce(self, node: Node, message) -> None:
        """A flood hop hit a dead neighbour: re-flood once around it.

        Query dissemination and teardown must not silently lose a whole
        subtree to one dead forwarder.  The repair wave re-sends the
        envelope to this node's *current* neighbour set (the routing layer
        drops detected-dead neighbours from it), excluding the bounced
        destination; receivers that already saw the envelope suppress it,
        so the extra cost is bounded to one wave per envelope per node.
        """
        self.flood_bounces += 1
        envelope = message.payload["envelope"]
        multicast_id = envelope["id"]
        if multicast_id in self._reflooded:
            return
        self._reflooded.add(multicast_id)
        self._flood(envelope, message.payload["payload_bytes"],
                    exclude=message.dst)

    # --------------------------------------------------------------- deliver

    def _deliver(self, envelope: dict) -> None:
        origin = envelope["origin"]
        for entry in envelope["entries"]:
            namespace = entry["namespace"]
            handlers = (
                list(self._handlers.get(namespace, ())) + list(self._wildcard_handlers)
            )
            for handler in handlers:
                handler(namespace, entry["resource_id"], entry["item"], origin)

    @classmethod
    def of(cls, node: Node) -> "MulticastService":
        """Fetch the multicast service installed on ``node``."""
        return node.services["dht.multicast"]
