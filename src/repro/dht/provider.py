"""Provider: the application-facing DHT interface (paper Table 3).

The Provider ties the routing layer and storage manager together and exposes
the calls PIER's query processor is written against:

=============================================  ===================================
``get(namespace, resourceID) → item``          key-based read (may return many)
``put(namespace, resourceID, instanceID, ...)`` soft-state insert with a lifetime
``renew(...) → bool``                          refresh an item's lifetime
``multicast(namespace, resourceID, item)``     deliver to all nodes of a namespace
``lscan(namespace) → iterator``                scan items stored *locally*
``newData(namespace) → item``                  callback on local arrival of new data
=============================================  ===================================

Every ``put``/``get`` follows the paper's two-step pattern: an overlay
``lookup`` resolves the responsible node, then the item or request is sent to
it *directly* (single IP hop), because "the bandwidth savings of not having a
large message hop along the overlay network" outweigh the small chance of the
mapping changing in between.

Batch interface
---------------
``put_batch`` / ``get_batch`` / ``multicast_batch`` are the high-throughput
companions of the scalar calls: a batch resolves all of its keys through one
:meth:`repro.dht.api.RoutingLayer.lookup_batch` (overlay hops shared between
keys routed the same way) and then sends **one message per (destination,
namespace)** carrying every item that destination owns, instead of one per
item.  Per-item semantics are preserved exactly — every stored item fires
its own ``newData`` callback and every ``get_batch`` key receives its own
reply callback.  Constructing the Provider with ``batching=False`` makes the
batch calls fall back to per-item scalar calls (the seed message pattern),
which is what the benchmarks use as their baseline.

Failure semantics
-----------------
The DHT gives soft-state guarantees only, but a *request* must never hang
forever: every ``get``/``get_batch`` is tracked as a pending entry until its
reply (or local resolution) arrives.  Three mechanisms bound that wait:

* **transport bounces** — a request sent to a dead owner is reported back by
  the network one round trip later; the Provider retries it once through a
  fresh overlay lookup (the routing layer routes around detected failures)
  and, when retries are exhausted, completes the request with an *empty*
  item list so the caller degrades instead of blocking;
* **per-request timeouts** — with ``request_timeout_s`` set (churn
  deployments), a timer armed at issue time catches the cases bounces
  cannot see (lookups that dead-end in a partitioned overlay);
* **query-scoped cancellation** — callers may tag requests with a ``scope``
  (the executor uses the query id) and sweep everything still pending with
  :meth:`Provider.cancel_pending` at query teardown.

Per-scope delivery accounting (issued / completed / failed / cancelled and
the put fragments bounced off dead nodes) backs the client's query
completeness report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.dht.api import RoutingLayer
from repro.dht.multicast import MulticastHandler, MulticastService
from repro.dht.naming import hash_key
from repro.dht.softstate import RenewalAgent
from repro.dht.storage import StorageManager, StoredItem
from repro.net.node import Node

#: Default soft-state lifetime (seconds) when the caller does not specify one.
DEFAULT_LIFETIME_S = 300.0
#: Default wire size of an item when the caller does not specify one.
DEFAULT_ITEM_BYTES = 100
#: How often each node sweeps expired soft state out of its storage manager.
DEFAULT_SWEEP_PERIOD_S = 5.0
#: How long a cancelled scope is remembered, so requests whose overlay
#: lookups were still resolving at cancellation time are suppressed too.
CANCELLED_SCOPE_TTL_S = 600.0

#: Callback type for ``get``: receives a list of :class:`DHTItem`.
GetCallback = Callable[[List["DHTItem"]], None]
#: Callback type for ``get_batch``: receives (resource_id, items) per key.
BatchGetCallback = Callable[[Any, List["DHTItem"]], None]
#: Callback type for ``newData``: receives the newly stored :class:`DHTItem`.
NewDataCallback = Callable[["DHTItem"], None]

#: A ``put_batch`` entry: ``(resource_id, value)`` with optional trailing
#: ``instance_id`` and ``item_bytes`` elements.
PutEntry = Sequence


@dataclass(frozen=True)
class DHTItem:
    """Read-only view of a stored item returned by ``get``/``lscan``."""

    namespace: str
    resource_id: Any
    instance_id: int
    value: Any
    publisher: Optional[int] = None
    size_bytes: int = DEFAULT_ITEM_BYTES


@dataclass
class _PendingGet:
    """Origin-side bookkeeping for one in-flight ``get``/``get_batch`` request.

    ``resource_ids`` holds one id for the scalar lane; the batch lane keeps
    every id of the (destination-grouped) sub-request so a bounce or timeout
    can retry — or fail — all of them together.  ``attempts_left`` bounds
    retry-after-reroute; ``timer`` is the optional per-request timeout.
    """

    callback: Callable
    namespace: str
    resource_ids: Tuple[Any, ...]
    scope: Any = None
    attempts_left: int = 0
    request_bytes: int = 60
    batch: bool = False
    timer: Any = None


def _new_scope_counters() -> Dict[str, int]:
    # issued == completed + failed + pending at any instant; a cancel sweep
    # releases the whole entry rather than keeping a tally for a dead query.
    return {"issued": 0, "completed": 0, "failed": 0}


class Provider:
    """Per-node Provider instance."""

    SERVICE_NAME = "dht.provider"
    PROTOCOL_PUT = "prov.put"
    PROTOCOL_PUT_BATCH = "prov.put_batch"
    PROTOCOL_PUT_CHUNK = "prov.put_chunk"
    PROTOCOL_GET = "prov.get"
    PROTOCOL_GET_REPLY = "prov.get_reply"
    PROTOCOL_GET_BATCH = "prov.get_batch"
    PROTOCOL_GET_BATCH_REPLY = "prov.get_batch_reply"

    def __init__(self, node: Node, routing: RoutingLayer,
                 sweep_period_s: float = DEFAULT_SWEEP_PERIOD_S,
                 instance_seed: int = 0,
                 batching: bool = True,
                 request_timeout_s: Optional[float] = None,
                 request_retries: int = 1):
        self.node = node
        self.routing = routing
        self.storage = StorageManager()
        self.batching = batching
        #: Per-request timeout for ``get``/``get_batch`` (``None`` disables
        #: the timer lane; transport bounces still bound dead-owner waits).
        self.request_timeout_s = request_timeout_s
        #: Retries after a reroute before a request completes empty.
        self.request_retries = max(0, request_retries)
        self.multicast_service = MulticastService(node, routing)
        self._new_data_callbacks: Dict[str, List[NewDataCallback]] = {}
        self._pending_gets: Dict[int, _PendingGet] = {}
        self._pending_batch_gets: Dict[int, _PendingGet] = {}
        self._get_ids = itertools.count(1)
        self._instance_ids = itertools.count(instance_seed * 1_000_003 + 1)
        #: Per-scope (query) get accounting: issued/completed/failed/cancelled.
        self._scope_counters: Dict[Any, Dict[str, int]] = {}
        #: scope -> cancellation time; suppresses requests whose lookups were
        #: mid-flight when the scope was cancelled (TTL-pruned).
        self._cancelled_scopes: Dict[Any, float] = {}
        #: Put fragments bounced off dead destinations, per namespace.
        self.put_bounces_by_namespace: Dict[str, int] = {}
        node.services[self.SERVICE_NAME] = self

        node.register_handler(self.PROTOCOL_PUT, self._on_put)
        node.register_handler(self.PROTOCOL_PUT_BATCH, self._on_put_batch)
        node.register_handler(self.PROTOCOL_PUT_CHUNK, self._on_put_chunk)
        node.register_handler(self.PROTOCOL_GET, self._on_get)
        node.register_handler(self.PROTOCOL_GET_REPLY, self._on_get_reply)
        node.register_handler(self.PROTOCOL_GET_BATCH, self._on_get_batch)
        node.register_handler(self.PROTOCOL_GET_BATCH_REPLY,
                              self._on_get_batch_reply)
        node.register_bounce_handler(self.PROTOCOL_GET, self._on_get_bounce)
        node.register_bounce_handler(self.PROTOCOL_GET_BATCH,
                                     self._on_get_batch_bounce)
        node.register_bounce_handler(self.PROTOCOL_PUT, self._on_put_bounce)
        node.register_bounce_handler(self.PROTOCOL_PUT_BATCH,
                                     self._on_put_batch_bounce)
        node.register_bounce_handler(self.PROTOCOL_PUT_CHUNK,
                                     self._on_put_chunk_bounce)

        # Item migration hooks used by the routing layer on join/leave.
        routing.extract_items = self.storage.extract
        routing.install_items = self.storage.install

        #: Handle of the periodic expiry sweep, cancelled by :meth:`close`.
        self._sweep_timer = None
        if sweep_period_s > 0:
            self._sweep_timer = node.schedule_periodic(sweep_period_s,
                                                       self._sweep)

    # --------------------------------------------------------------- helpers

    @classmethod
    def of(cls, node: Node) -> "Provider":
        """Fetch the Provider installed on ``node``."""
        return node.services[cls.SERVICE_NAME]

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.node.now

    def next_instance_id(self) -> int:
        """A fresh instanceID unique to this node."""
        return next(self._instance_ids)

    def _sweep(self) -> None:
        self.storage.expire_items(self.now)

    # ------------------------------------------------------------------- put

    def put(self, namespace: str, resource_id: Any, instance_id: Optional[int],
            value: Any, lifetime: float = DEFAULT_LIFETIME_S,
            item_bytes: int = DEFAULT_ITEM_BYTES) -> int:
        """Publish an item into the DHT (paper Table 3 ``put``).

        Returns the instanceID used (freshly generated when ``None`` is
        passed, matching the paper's "randomly assigned by the user
        application").
        """
        request, instance_id = self._build_put_request(
            namespace, resource_id, instance_id, value, lifetime, item_bytes
        )

        def _deliver(owner: int) -> None:
            if owner == self.node.address:
                self._store_request(request)
            else:
                self.node.send(owner, self.PROTOCOL_PUT, payload=request,
                               payload_bytes=item_bytes)

        self.routing.lookup(request["key"], _deliver)
        return instance_id

    def _build_put_request(self, namespace: str, resource_id: Any,
                           instance_id: Optional[int], value: Any,
                           lifetime: float, item_bytes: int) -> Tuple[dict, int]:
        if instance_id is None:
            instance_id = self.next_instance_id()
        request = {
            "namespace": namespace,
            "resource_id": resource_id,
            "instance_id": instance_id,
            "value": value,
            "lifetime": lifetime,
            "publisher": self.node.address,
            "size_bytes": item_bytes,
            "key": hash_key(namespace, resource_id),
        }
        return request, instance_id

    def put_direct(self, target: int, namespace: str, resource_id: Any,
                   instance_id: Optional[int], value: Any,
                   lifetime: float = DEFAULT_LIFETIME_S,
                   item_bytes: int = DEFAULT_ITEM_BYTES,
                   charge_lookup: bool = True) -> int:
        """Publish an item onto a *designated* node instead of the key's owner.

        Used for queries that confine their temporary state to a fixed set of
        computation nodes (the paper's Figure 3 experiments with 1/2/8/16
        computation nodes).  When ``charge_lookup`` is true an overlay lookup
        of the item's key is still performed first, so the latency cost of
        resolving a destination matches the ordinary ``put`` path.
        """
        request, instance_id = self._build_put_request(
            namespace, resource_id, instance_id, value, lifetime, item_bytes
        )

        def _deliver(_owner: int) -> None:
            if target == self.node.address:
                self._store_request(request)
            else:
                self.node.send(target, self.PROTOCOL_PUT, payload=request,
                               payload_bytes=item_bytes)

        if charge_lookup:
            self.routing.lookup(request["key"], _deliver)
        else:
            _deliver(target)
        return instance_id

    def renew(self, namespace: str, resource_id: Any, instance_id: int,
              value: Any, lifetime: float = DEFAULT_LIFETIME_S,
              item_bytes: int = DEFAULT_ITEM_BYTES) -> bool:
        """Refresh an item's lifetime (paper Table 3 ``renew``).

        Implemented as an idempotent re-``put`` of the same triple; returns
        True (best-effort semantics — the DHT gives no stronger guarantee).
        """
        self.put(namespace, resource_id, instance_id, value, lifetime, item_bytes)
        return True

    def _on_put(self, node: Node, message) -> None:
        self._store_request(message.payload)

    def _store_request(self, request: dict) -> None:
        item = StoredItem(
            namespace=request["namespace"],
            resource_id=request["resource_id"],
            instance_id=request["instance_id"],
            value=request["value"],
            key=request["key"],
            expires_at=self.now + request["lifetime"],
            stored_at=self.now,
            publisher=request["publisher"],
            size_bytes=request["size_bytes"],
        )
        # ``newData`` fires only for triples not already live; the indexed
        # membership check replaces a retrieve() that materialised every
        # instance of the resource on each put.
        is_new = not self.storage.has_instance(
            item.namespace, item.resource_id, item.instance_id, self.now
        )
        self.storage.store(item)
        if is_new:
            view = self._view(item)
            for callback in self._new_data_callbacks.get(item.namespace, ()):
                callback(view)

    # ------------------------------------------------------------- put_batch

    def _normalize_put_entries(self, namespace: str, entries: Sequence[PutEntry],
                               lifetime: float, item_bytes: int
                               ) -> Tuple[List[dict], List[int]]:
        """Expand ``(resource_id, value[, instance_id[, item_bytes]])`` entries."""
        requests: List[dict] = []
        instance_ids: List[int] = []
        for entry in entries:
            resource_id, value = entry[0], entry[1]
            instance_id = entry[2] if len(entry) > 2 else None
            entry_bytes = entry[3] if len(entry) > 3 else item_bytes
            request, instance_id = self._build_put_request(
                namespace, resource_id, instance_id, value, lifetime, entry_bytes
            )
            requests.append(request)
            instance_ids.append(instance_id)
        return requests, instance_ids

    def put_batch(self, namespace: str, entries: Sequence[PutEntry],
                  lifetime: float = DEFAULT_LIFETIME_S,
                  item_bytes: int = DEFAULT_ITEM_BYTES) -> List[int]:
        """Publish many items with one routed resolution and one message per owner.

        ``entries`` is a sequence of ``(resource_id, value)`` tuples with
        optional trailing ``instance_id`` and ``item_bytes`` elements.
        Returns the instanceIDs used, aligned with ``entries``.  Items whose
        keys share an owner travel in a single ``prov.put_batch`` message
        whose payload is the sum of the item sizes; every stored item still
        fires its own ``newData`` callback on arrival.  With
        ``batching=False`` this degrades to one scalar :meth:`put` per entry.
        """
        requests, instance_ids = self._normalize_put_entries(
            namespace, entries, lifetime, item_bytes
        )
        if not requests:
            return instance_ids
        if not self.batching:
            for request in requests:
                self._route_put_request(request)
            return instance_ids
        requests_by_key: Dict[int, List[dict]] = {}
        for request in requests:
            requests_by_key.setdefault(request["key"], []).append(request)

        def _deliver(owner: int, keys: List[int]) -> None:
            batch = [request for key in keys for request in requests_by_key[key]]
            self._send_put_requests(owner, batch)

        self.routing.lookup_batch(
            list(requests_by_key), _deliver,
            on_unresolved=lambda keys: self._count_unroutable_puts(
                namespace, requests_by_key, keys),
        )
        return instance_ids

    def _count_unroutable_puts(self, namespace: str,
                               requests_by_key: Dict[int, List[dict]],
                               keys: List[int]) -> None:
        """Batched put keys the overlay could not route: fragments are lost.

        Soft-state semantics (renewal repairs them), but the loss must show
        up in the namespace's counter or a query's completeness report would
        read ``complete`` while rehash fragments silently vanished.
        """
        lost = sum(len(requests_by_key[key]) for key in keys)
        if lost:
            self._record_put_bounce(namespace, lost)

    def put_direct_batch(self, target: int, namespace: str,
                         entries: Sequence[PutEntry],
                         lifetime: float = DEFAULT_LIFETIME_S,
                         item_bytes: int = DEFAULT_ITEM_BYTES,
                         charge_lookup: bool = True) -> List[int]:
        """Batch companion of :meth:`put_direct`: everything goes to ``target``.

        With ``charge_lookup`` the keys are still resolved through the
        overlay first (one batched resolution), so the latency cost matches
        the ordinary ``put_batch`` path; the items themselves are shipped to
        ``target`` in one message per resolution wave.
        """
        requests, instance_ids = self._normalize_put_entries(
            namespace, entries, lifetime, item_bytes
        )
        if not requests:
            return instance_ids
        if not self.batching:
            for request in requests:
                self._route_put_request(request, target=target,
                                        charge_lookup=charge_lookup)
            return instance_ids
        requests_by_key: Dict[int, List[dict]] = {}
        for request in requests:
            requests_by_key.setdefault(request["key"], []).append(request)

        if not charge_lookup:
            self._send_put_requests(target, requests)
            return instance_ids

        def _deliver(_owner: int, keys: List[int]) -> None:
            batch = [request for key in keys for request in requests_by_key[key]]
            self._send_put_requests(target, batch)

        self.routing.lookup_batch(
            list(requests_by_key), _deliver,
            on_unresolved=lambda keys: self._count_unroutable_puts(
                namespace, requests_by_key, keys),
        )
        return instance_ids

    def _route_put_request(self, request: dict, target: Optional[int] = None,
                           charge_lookup: bool = True) -> None:
        """Scalar (seed-pattern) dispatch of one prepared put request."""

        def _deliver(owner: int) -> None:
            destination = owner if target is None else target
            self._send_put_requests(destination, [request], batch_protocol=False)

        if charge_lookup:
            self.routing.lookup(request["key"], _deliver)
        else:
            _deliver(target if target is not None else self.node.address)

    def _send_put_requests(self, destination: int, requests: List[dict],
                           batch_protocol: bool = True) -> None:
        """Store locally or ship a group of put requests to one destination."""
        if destination == self.node.address:
            for request in requests:
                self._store_request(request)
            return
        if not batch_protocol and len(requests) == 1:
            self.node.send(destination, self.PROTOCOL_PUT, payload=requests[0],
                           payload_bytes=requests[0]["size_bytes"])
            return
        total_bytes = sum(request["size_bytes"] for request in requests)
        self.node.send(destination, self.PROTOCOL_PUT_BATCH,
                       payload={"requests": requests},
                       payload_bytes=total_bytes)

    def _on_put_batch(self, node: Node, message) -> None:
        for request in message.payload["requests"]:
            self._store_request(request)

    def _record_put_bounce(self, namespace: str, count: int) -> None:
        self.put_bounces_by_namespace[namespace] = (
            self.put_bounces_by_namespace.get(namespace, 0) + count
        )

    def _on_put_bounce(self, node: Node, message) -> None:
        """A put's destination was dead: the fragment is lost (soft state).

        Publishers do not retry — renewal is the repair mechanism — but the
        loss is counted per namespace so query completeness reports can
        attribute lost temporary fragments to their query.
        """
        self._record_put_bounce(message.payload["namespace"], 1)

    def _on_put_batch_bounce(self, node: Node, message) -> None:
        requests = message.payload["requests"]
        by_namespace: Dict[str, int] = {}
        for request in requests:
            by_namespace[request["namespace"]] = (
                by_namespace.get(request["namespace"], 0) + 1
            )
        for namespace, count in by_namespace.items():
            self._record_put_bounce(namespace, count)

    # ------------------------------------------------------------- put_chunk

    def put_chunk(self, namespace: str, resource_ids: Sequence[Any],
                  values: Sequence[Any],
                  lifetime: float = DEFAULT_LIFETIME_S,
                  item_bytes: int = DEFAULT_ITEM_BYTES,
                  target: Optional[int] = None) -> List[int]:
        """Columnar companion of :meth:`put_batch`: one namespace, one
        lifetime, one per-item size — the common shape of a rehash wave.

        Items whose keys share an owner travel as *slices* of parallel
        ``resource_ids``/``values``/``instance_ids`` arrays in a single
        ``prov.put_chunk`` message instead of a list of per-item request
        dicts; the receiver expands the slice back into per-item stores, so
        ``newData`` still fires once per stored triple.  Keys are grouped in
        first-occurrence order, matching :meth:`put_batch` delivery order.
        ``target`` confines all items to a designated computation node (keys
        are still resolved through the overlay so latency accounting matches
        the owner-routed path).  With ``batching=False`` this degrades to
        one scalar put per item.
        """
        count = len(resource_ids)
        instance_ids = [self.next_instance_id() for _ in range(count)]
        if not count:
            return instance_ids
        keys = [hash_key(namespace, rid) for rid in resource_ids]
        if not self.batching:
            for i in range(count):
                request = {
                    "namespace": namespace,
                    "resource_id": resource_ids[i],
                    "instance_id": instance_ids[i],
                    "value": values[i],
                    "lifetime": lifetime,
                    "publisher": self.node.address,
                    "size_bytes": item_bytes,
                    "key": keys[i],
                }
                self._route_put_request(request, target=target)
            return instance_ids
        indices_by_key: Dict[int, List[int]] = {}
        for i, key in enumerate(keys):
            indices_by_key.setdefault(key, []).append(i)

        def _deliver(owner: int, resolved: List[int]) -> None:
            indices = [i for key in resolved for i in indices_by_key[key]]
            destination = owner if target is None else target
            self._send_put_chunk(destination, namespace, resource_ids, values,
                                 instance_ids, keys, indices, lifetime,
                                 item_bytes)

        self.routing.lookup_batch(
            list(indices_by_key), _deliver,
            on_unresolved=lambda lost_keys: self._record_put_bounce(
                namespace,
                sum(len(indices_by_key[key]) for key in lost_keys)),
        )
        return instance_ids

    def _send_put_chunk(self, destination: int, namespace: str,
                        resource_ids: Sequence[Any], values: Sequence[Any],
                        instance_ids: List[int], keys: List[int],
                        indices: List[int], lifetime: float,
                        item_bytes: int) -> None:
        payload = {
            "namespace": namespace,
            "resource_ids": [resource_ids[i] for i in indices],
            "values": [values[i] for i in indices],
            "instance_ids": [instance_ids[i] for i in indices],
            "keys": [keys[i] for i in indices],
            "lifetime": lifetime,
            "publisher": self.node.address,
            "item_bytes": item_bytes,
        }
        if destination == self.node.address:
            self._store_chunk(payload)
            return
        self.node.send(destination, self.PROTOCOL_PUT_CHUNK, payload=payload,
                       payload_bytes=item_bytes * len(indices))

    def _store_chunk(self, payload: dict) -> None:
        expires_at = self.now + payload["lifetime"]
        stored_at = self.now
        namespace = payload["namespace"]
        publisher = payload["publisher"]
        item_bytes = payload["item_bytes"]
        callbacks = self._new_data_callbacks.get(namespace, ())
        for resource_id, value, instance_id, key in zip(
                payload["resource_ids"], payload["values"],
                payload["instance_ids"], payload["keys"]):
            item = StoredItem(
                namespace=namespace,
                resource_id=resource_id,
                instance_id=instance_id,
                value=value,
                key=key,
                expires_at=expires_at,
                stored_at=stored_at,
                publisher=publisher,
                size_bytes=item_bytes,
            )
            is_new = not self.storage.has_instance(
                namespace, resource_id, instance_id, self.now
            )
            self.storage.store(item)
            if is_new and callbacks:
                view = self._view(item)
                for callback in callbacks:
                    callback(view)

    def _on_put_chunk(self, node: Node, message) -> None:
        self._store_chunk(message.payload)

    def _on_put_chunk_bounce(self, node: Node, message) -> None:
        payload = message.payload
        self._record_put_bounce(payload["namespace"],
                                len(payload["resource_ids"]))

    # ------------------------------------------------------------------- get

    def get(self, namespace: str, resource_id: Any, callback: GetCallback,
            request_bytes: int = 60, scope: Any = None,
            _attempts_left: Optional[int] = None) -> None:
        """Fetch all items with the given namespace/resourceID (``get``).

        ``scope`` tags the request for :meth:`cancel_pending` and the
        per-scope delivery accounting (queries pass their query id).  The
        request is tracked from issue time: a bounce off a dead owner (or,
        with ``request_timeout_s`` set, a timeout) retries it through a
        fresh lookup up to ``request_retries`` times and then completes it
        with an empty item list — callers degrade, they never hang.
        """
        key = hash_key(namespace, resource_id)
        request_id = next(self._get_ids)
        entry = _PendingGet(
            callback=callback, namespace=namespace, resource_ids=(resource_id,),
            scope=scope, request_bytes=request_bytes,
            attempts_left=(self.request_retries if _attempts_left is None
                           else _attempts_left),
        )
        self._pending_gets[request_id] = entry
        if _attempts_left is None:
            self._count(scope, "issued")
        self._arm_timeout(entry, request_id)

        def _ask(owner: int) -> None:
            if self._pending_gets.get(request_id) is not entry:
                return  # cancelled / failed while the lookup was in flight
            if owner == self.node.address:
                self._complete_get(request_id,
                                   self.get_local(namespace, resource_id))
                return
            self.node.send(
                owner,
                self.PROTOCOL_GET,
                payload={
                    "namespace": namespace,
                    "resource_id": resource_id,
                    "origin": self.node.address,
                    "request_id": request_id,
                },
                payload_bytes=request_bytes,
            )

        self.routing.lookup(key, _ask)

    def get_local(self, namespace: str, resource_id: Any) -> List[DHTItem]:
        """Items for ``(namespace, resourceID)`` stored on this node."""
        return [
            self._view(item)
            for item in self.storage.retrieve(namespace, resource_id, self.now)
        ]

    def _on_get(self, node: Node, message) -> None:
        payload = message.payload
        items = self.get_local(payload["namespace"], payload["resource_id"])
        reply_bytes = sum(item.size_bytes for item in items) or 40
        node.send(
            payload["origin"],
            self.PROTOCOL_GET_REPLY,
            payload={"request_id": payload["request_id"], "items": items},
            payload_bytes=reply_bytes,
        )

    def _on_get_reply(self, node: Node, message) -> None:
        payload = message.payload
        self._complete_get(payload["request_id"], payload["items"])

    # ------------------------------------------------- pending-get lifecycle

    def _count(self, scope: Any, event: str, amount: int = 1) -> None:
        """Bump one per-scope accounting counter (no-op for unscoped calls)."""
        if scope is None:
            return
        counters = self._scope_counters.get(scope)
        if counters is None:
            counters = self._scope_counters[scope] = _new_scope_counters()
        counters[event] += amount

    def _arm_timeout(self, entry: _PendingGet, request_id: int) -> None:
        if self.request_timeout_s is None:
            return
        entry.timer = self.node.schedule(
            self.request_timeout_s, self._on_get_timeout, request_id, entry.batch
        )

    @staticmethod
    def _disarm(entry: _PendingGet) -> None:
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None

    def _complete_get(self, request_id: int, items: List[DHTItem]) -> None:
        entry = self._pending_gets.pop(request_id, None)
        if entry is None:
            return  # already failed/cancelled; drop the late reply
        self._disarm(entry)
        self._count(entry.scope, "completed")
        entry.callback(items)

    def _on_get_timeout(self, request_id: int, batch: bool) -> None:
        pending = self._pending_batch_gets if batch else self._pending_gets
        if request_id in pending:
            self._retry_or_fail(request_id, batch=batch)

    def _on_get_bounce(self, node: Node, message) -> None:
        self._retry_or_fail(message.payload["request_id"], batch=False)

    def _on_get_batch_bounce(self, node: Node, message) -> None:
        self._retry_or_fail(message.payload["request_id"], batch=True)

    def _retry_or_fail(self, request_id: int, batch: bool) -> None:
        """A request's destination is unreachable: reroute or complete empty."""
        pending = self._pending_batch_gets if batch else self._pending_gets
        entry = pending.pop(request_id, None)
        if entry is None:
            return
        self._disarm(entry)
        if entry.attempts_left > 0:
            # Retry through a fresh overlay resolution: the routing layer has
            # marked the bounced hop dead, so the new lookup reroutes.
            if batch:
                self.get_batch(entry.namespace, list(entry.resource_ids),
                               entry.callback, request_bytes=entry.request_bytes,
                               scope=entry.scope,
                               _attempts_left=entry.attempts_left - 1)
            else:
                self.get(entry.namespace, entry.resource_ids[0], entry.callback,
                         request_bytes=entry.request_bytes, scope=entry.scope,
                         _attempts_left=entry.attempts_left - 1)
            return
        self._fail_entry(entry)

    def _fail_entry(self, entry: _PendingGet) -> None:
        """Complete an unreachable request with empty results (degrade)."""
        self._count(entry.scope, "failed", len(entry.resource_ids))
        if entry.batch:
            for resource_id in entry.resource_ids:
                entry.callback(resource_id, [])
        else:
            entry.callback([])

    def cancel_pending(self, scope: Any) -> int:
        """Drop every pending get tagged with ``scope`` without calling back.

        Swept at query teardown so cancelled queries do not accumulate
        callbacks (or fire them into dead dataflows).  Also releases the
        scope's accounting entry; returns the number of requests dropped.
        """
        dropped = 0
        for pending in (self._pending_gets, self._pending_batch_gets):
            stale = [request_id for request_id, entry in pending.items()
                     if entry.scope == scope]
            for request_id in stale:
                entry = pending.pop(request_id)
                self._disarm(entry)
                dropped += len(entry.resource_ids)
        self._scope_counters.pop(scope, None)
        now = self.now
        self._cancelled_scopes[scope] = now
        if len(self._cancelled_scopes) > 64:
            self._cancelled_scopes = {
                cancelled: when
                for cancelled, when in self._cancelled_scopes.items()
                if now - when <= CANCELLED_SCOPE_TTL_S
            }
        return dropped

    def _scope_cancelled(self, scope: Any) -> bool:
        return scope is not None and scope in self._cancelled_scopes

    def pending_get_count(self, scope: Any = None) -> int:
        """Number of in-flight get requests (optionally for one scope)."""
        total = 0
        for pending in (self._pending_gets, self._pending_batch_gets):
            for entry in pending.values():
                if scope is None or entry.scope == scope:
                    total += len(entry.resource_ids)
        return total

    def scope_report(self, scope: Any) -> Dict[str, int]:
        """Accounting snapshot for one scope, including the pending count."""
        report = dict(self._scope_counters.get(scope) or _new_scope_counters())
        report["pending"] = self.pending_get_count(scope)
        return report

    # ------------------------------------------------------------- get_batch

    def get_batch(self, namespace: str, resource_ids: Sequence[Any],
                  callback: BatchGetCallback, request_bytes: int = 60,
                  scope: Any = None,
                  _attempts_left: Optional[int] = None) -> None:
        """Fetch the items of many resourceIDs with one request per owner.

        ``callback(resource_id, items)`` fires once per distinct resourceID.
        IDs owned by the same node share a single ``prov.get_batch`` request
        and a single reply; locally-owned IDs resolve synchronously.  With
        ``batching=False`` this degrades to one scalar :meth:`get` per ID.

        Like :meth:`get`, every sub-request is tracked until its reply:
        bounces and timeouts retry it (``request_retries`` times) and then
        complete each of its ids with an empty item list, and ids whose
        routed lookups dead-end are failed as soon as the routing layer
        reports them unresolved.  ``scope`` tags the requests for
        :meth:`cancel_pending` and the delivery accounting.
        """
        unique = list(dict.fromkeys(resource_ids))
        if not unique:
            return
        if not self.batching:
            for resource_id in unique:
                self.get(namespace, resource_id,
                         lambda items, rid=resource_id: callback(rid, items),
                         request_bytes=request_bytes, scope=scope,
                         _attempts_left=_attempts_left)
            return
        attempts = (self.request_retries if _attempts_left is None
                    else _attempts_left)
        if _attempts_left is None:
            self._count(scope, "issued", len(unique))
        rids_by_key: Dict[int, List[Any]] = {}
        for resource_id in unique:
            key = hash_key(namespace, resource_id)
            rids_by_key.setdefault(key, []).append(resource_id)

        def _ask(owner: int, keys: List[int]) -> None:
            if self._scope_cancelled(scope):
                return  # cancelled while the batch lookup was resolving
            rids = [rid for key in keys for rid in rids_by_key[key]]
            if owner == self.node.address:
                for rid in rids:
                    self._count(scope, "completed")
                    callback(rid, self.get_local(namespace, rid))
                return
            request_id = next(self._get_ids)
            entry = _PendingGet(
                callback=callback, namespace=namespace,
                resource_ids=tuple(rids), scope=scope,
                attempts_left=attempts, request_bytes=request_bytes,
                batch=True,
            )
            self._pending_batch_gets[request_id] = entry
            self._arm_timeout(entry, request_id)
            self.node.send(
                owner,
                self.PROTOCOL_GET_BATCH,
                payload={
                    "namespace": namespace,
                    "resource_ids": rids,
                    "origin": self.node.address,
                    "request_id": request_id,
                },
                payload_bytes=request_bytes + 8 * (len(rids) - 1),
            )

        def _unresolved(keys: List[int]) -> None:
            if self._scope_cancelled(scope):
                return
            # The overlay could not route these keys at all (dead-end): fail
            # their ids immediately instead of leaving the caller waiting.
            stale = _PendingGet(
                callback=callback, namespace=namespace,
                resource_ids=tuple(rid for key in keys
                                   for rid in rids_by_key[key]),
                scope=scope, batch=True,
            )
            self._fail_entry(stale)

        self.routing.lookup_batch(list(rids_by_key), _ask,
                                  on_unresolved=_unresolved)

    def _on_get_batch(self, node: Node, message) -> None:
        payload = message.payload
        namespace = payload["namespace"]
        results = [
            {"resource_id": rid, "items": self.get_local(namespace, rid)}
            for rid in payload["resource_ids"]
        ]
        reply_bytes = sum(
            item.size_bytes for result in results for item in result["items"]
        ) or 40
        node.send(
            payload["origin"],
            self.PROTOCOL_GET_BATCH_REPLY,
            payload={"request_id": payload["request_id"], "results": results},
            payload_bytes=reply_bytes,
        )

    def _on_get_batch_reply(self, node: Node, message) -> None:
        payload = message.payload
        entry = self._pending_batch_gets.pop(payload["request_id"], None)
        if entry is None:
            return
        self._disarm(entry)
        self._count(entry.scope, "completed", len(payload["results"]))
        for result in payload["results"]:
            entry.callback(result["resource_id"], result["items"])

    # ------------------------------------------------------------- local ops

    def lscan(self, namespace: str) -> Iterator[DHTItem]:
        """Iterate over the items of ``namespace`` stored locally (``lscan``)."""
        for item in self.storage.scan(namespace, self.now):
            yield self._view(item)

    def on_new_data(self, namespace: str, callback: NewDataCallback) -> None:
        """Register a ``newData`` callback for a namespace (paper Table 3)."""
        self._new_data_callbacks.setdefault(namespace, []).append(callback)

    def off_new_data(self, namespace: str, callback: NewDataCallback) -> bool:
        """Unregister a previously registered ``newData`` callback.

        Queries are soft state: when one finishes or is cancelled, its probes
        must come off so the namespace stops invoking dead dataflows (and so
        long simulations do not accumulate callbacks).  Returns whether the
        callback was found.
        """
        callbacks = self._new_data_callbacks.get(namespace)
        if not callbacks or callback not in callbacks:
            return False
        callbacks.remove(callback)
        if not callbacks:
            del self._new_data_callbacks[namespace]
        return True

    def new_data_callback_count(self, namespace: str) -> int:
        """Number of live ``newData`` callbacks for ``namespace`` (tests/ops)."""
        return len(self._new_data_callbacks.get(namespace, ()))

    def purge_namespace(self, namespace: str) -> int:
        """Drop every locally stored item of ``namespace``; returns the count.

        Used by query teardown to release temporary rehash/filter/partial
        state immediately instead of waiting for soft-state expiry.  The
        namespace's put-bounce counter is released with it.
        """
        self.put_bounces_by_namespace.pop(namespace, None)
        return self.storage.purge_namespace(namespace)

    # -------------------------------------------------------------- multicast

    def multicast(self, namespace: str, resource_id: Any, item: Any,
                  payload_bytes: int = 200) -> int:
        """Deliver ``item`` to every node serving ``namespace`` (``multicast``)."""
        return self.multicast_service.multicast(
            namespace, resource_id, item, payload_bytes=payload_bytes
        )

    def multicast_batch(self, entries: Sequence[Sequence],
                        payload_bytes: int = 200) -> int:
        """Deliver several (namespace, resourceID, item) entries in one flood.

        Each entry may carry an optional fourth element with its own wire
        size; ``payload_bytes`` is the per-entry default.  The single flood
        is charged the sum of the entry sizes.  With ``batching=False`` this
        degrades to one flood per entry at that entry's own size (the last
        multicast id is returned), matching the seed message pattern.
        """
        if not entries:
            raise ValueError("multicast_batch needs at least one entry")
        normalized = [
            (entry[0], entry[1], entry[2],
             entry[3] if len(entry) > 3 else payload_bytes)
            for entry in entries
        ]
        if not self.batching:
            last = 0
            for namespace, resource_id, item, entry_bytes in normalized:
                last = self.multicast_service.multicast(
                    namespace, resource_id, item, payload_bytes=entry_bytes
                )
            return last
        return self.multicast_service.multicast_batch(
            [(namespace, resource_id, item)
             for namespace, resource_id, item, _bytes in normalized],
            payload_bytes=sum(entry_bytes for _ns, _rid, _item, entry_bytes
                              in normalized),
        )

    def on_multicast(self, namespace: str, handler: MulticastHandler) -> None:
        """Register a handler invoked when a multicast for ``namespace`` arrives."""
        self.multicast_service.subscribe(namespace, handler)

    def off_multicast(self, namespace: str, handler: MulticastHandler) -> bool:
        """Unregister a handler added by :meth:`on_multicast`.

        Returns whether the handler was still registered.  Every
        ``on_multicast`` needs a matching ``off_multicast`` on the query
        teardown path, or the group subscription (and everything the
        handler closes over) outlives the query.
        """
        return self.multicast_service.unsubscribe(namespace, handler)

    # ----------------------------------------------------------------- admin

    def close(self) -> None:
        """Release node-level resources on shutdown/departure.

        Cancels the periodic storage sweep so a drained node (graceful
        leave, cluster shutdown) does not keep a live timer — on the real
        transport that timer would hold the event loop open.
        """
        if self._sweep_timer is not None:
            self._sweep_timer.cancel()
            self._sweep_timer = None

    def rebind_routing(self, routing: RoutingLayer) -> None:
        """Point this Provider at a rebuilt routing layer (live membership).

        When a real node folds a join/leave into its overlay it rebuilds
        the deterministic routing tables over the new address list and
        rebinds the fresh layer onto the same node; this swaps the
        Provider's (and its multicast service's) routing reference and
        re-wires the item-migration hooks onto the new layer.  Pending
        gets keep their bookkeeping — their replies, bounces and timeout
        timers all resolve through the node, not the routing layer.
        """
        self.routing = routing
        self.multicast_service.routing = routing
        routing.extract_items = self.storage.extract
        routing.install_items = self.storage.install

    def make_renewal_agent(self, refresh_period: float) -> RenewalAgent:
        """Create (but do not start) a renewal agent bound to this Provider."""
        return RenewalAgent(provider=self, refresh_period=refresh_period)

    def handle_node_failure(self) -> int:
        """Model this node's process death (called when the node fails).

        All locally stored soft state is dropped and every in-flight get this
        node originated is forgotten (their timers cancelled) — a failed
        process has no callbacks to deliver to.  Returns the number of stored
        items dropped.
        """
        for pending in (self._pending_gets, self._pending_batch_gets):
            for entry in pending.values():
                self._disarm(entry)
            pending.clear()
        self._scope_counters.clear()
        self.put_bounces_by_namespace.clear()
        return self.storage.clear()

    def _view(self, item: StoredItem) -> DHTItem:
        return DHTItem(
            namespace=item.namespace,
            resource_id=item.resource_id,
            instance_id=item.instance_id,
            value=item.value,
            publisher=item.publisher,
            size_bytes=item.size_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Provider(node={self.node.address}, items={len(self.storage)})"
