"""Provider: the application-facing DHT interface (paper Table 3).

The Provider ties the routing layer and storage manager together and exposes
the calls PIER's query processor is written against:

=============================================  ===================================
``get(namespace, resourceID) → item``          key-based read (may return many)
``put(namespace, resourceID, instanceID, ...)`` soft-state insert with a lifetime
``renew(...) → bool``                          refresh an item's lifetime
``multicast(namespace, resourceID, item)``     deliver to all nodes of a namespace
``lscan(namespace) → iterator``                scan items stored *locally*
``newData(namespace) → item``                  callback on local arrival of new data
=============================================  ===================================

Every ``put``/``get`` follows the paper's two-step pattern: an overlay
``lookup`` resolves the responsible node, then the item or request is sent to
it *directly* (single IP hop), because "the bandwidth savings of not having a
large message hop along the overlay network" outweigh the small chance of the
mapping changing in between.

Batch interface
---------------
``put_batch`` / ``get_batch`` / ``multicast_batch`` are the high-throughput
companions of the scalar calls: a batch resolves all of its keys through one
:meth:`repro.dht.api.RoutingLayer.lookup_batch` (overlay hops shared between
keys routed the same way) and then sends **one message per (destination,
namespace)** carrying every item that destination owns, instead of one per
item.  Per-item semantics are preserved exactly — every stored item fires
its own ``newData`` callback and every ``get_batch`` key receives its own
reply callback.  Constructing the Provider with ``batching=False`` makes the
batch calls fall back to per-item scalar calls (the seed message pattern),
which is what the benchmarks use as their baseline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.dht.api import RoutingLayer
from repro.dht.multicast import MulticastHandler, MulticastService
from repro.dht.naming import hash_key
from repro.dht.softstate import RenewalAgent
from repro.dht.storage import StorageManager, StoredItem
from repro.net.node import Node

#: Default soft-state lifetime (seconds) when the caller does not specify one.
DEFAULT_LIFETIME_S = 300.0
#: Default wire size of an item when the caller does not specify one.
DEFAULT_ITEM_BYTES = 100
#: How often each node sweeps expired soft state out of its storage manager.
DEFAULT_SWEEP_PERIOD_S = 5.0

#: Callback type for ``get``: receives a list of :class:`DHTItem`.
GetCallback = Callable[[List["DHTItem"]], None]
#: Callback type for ``get_batch``: receives (resource_id, items) per key.
BatchGetCallback = Callable[[Any, List["DHTItem"]], None]
#: Callback type for ``newData``: receives the newly stored :class:`DHTItem`.
NewDataCallback = Callable[["DHTItem"], None]

#: A ``put_batch`` entry: ``(resource_id, value)`` with optional trailing
#: ``instance_id`` and ``item_bytes`` elements.
PutEntry = Sequence


@dataclass(frozen=True)
class DHTItem:
    """Read-only view of a stored item returned by ``get``/``lscan``."""

    namespace: str
    resource_id: Any
    instance_id: int
    value: Any
    publisher: Optional[int] = None
    size_bytes: int = DEFAULT_ITEM_BYTES


class Provider:
    """Per-node Provider instance."""

    SERVICE_NAME = "dht.provider"
    PROTOCOL_PUT = "prov.put"
    PROTOCOL_PUT_BATCH = "prov.put_batch"
    PROTOCOL_GET = "prov.get"
    PROTOCOL_GET_REPLY = "prov.get_reply"
    PROTOCOL_GET_BATCH = "prov.get_batch"
    PROTOCOL_GET_BATCH_REPLY = "prov.get_batch_reply"

    def __init__(self, node: Node, routing: RoutingLayer,
                 sweep_period_s: float = DEFAULT_SWEEP_PERIOD_S,
                 instance_seed: int = 0,
                 batching: bool = True):
        self.node = node
        self.routing = routing
        self.storage = StorageManager()
        self.batching = batching
        self.multicast_service = MulticastService(node, routing)
        self._new_data_callbacks: Dict[str, List[NewDataCallback]] = {}
        self._pending_gets: Dict[int, GetCallback] = {}
        self._pending_batch_gets: Dict[int, BatchGetCallback] = {}
        self._get_ids = itertools.count(1)
        self._instance_ids = itertools.count(instance_seed * 1_000_003 + 1)
        node.services[self.SERVICE_NAME] = self

        node.register_handler(self.PROTOCOL_PUT, self._on_put)
        node.register_handler(self.PROTOCOL_PUT_BATCH, self._on_put_batch)
        node.register_handler(self.PROTOCOL_GET, self._on_get)
        node.register_handler(self.PROTOCOL_GET_REPLY, self._on_get_reply)
        node.register_handler(self.PROTOCOL_GET_BATCH, self._on_get_batch)
        node.register_handler(self.PROTOCOL_GET_BATCH_REPLY,
                              self._on_get_batch_reply)

        # Item migration hooks used by the routing layer on join/leave.
        routing.extract_items = self.storage.extract
        routing.install_items = self.storage.install

        if sweep_period_s > 0:
            node.schedule_periodic(sweep_period_s, self._sweep)

    # --------------------------------------------------------------- helpers

    @classmethod
    def of(cls, node: Node) -> "Provider":
        """Fetch the Provider installed on ``node``."""
        return node.services[cls.SERVICE_NAME]

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.node.now

    def next_instance_id(self) -> int:
        """A fresh instanceID unique to this node."""
        return next(self._instance_ids)

    def _sweep(self) -> None:
        self.storage.expire_items(self.now)

    # ------------------------------------------------------------------- put

    def put(self, namespace: str, resource_id: Any, instance_id: Optional[int],
            value: Any, lifetime: float = DEFAULT_LIFETIME_S,
            item_bytes: int = DEFAULT_ITEM_BYTES) -> int:
        """Publish an item into the DHT (paper Table 3 ``put``).

        Returns the instanceID used (freshly generated when ``None`` is
        passed, matching the paper's "randomly assigned by the user
        application").
        """
        request, instance_id = self._build_put_request(
            namespace, resource_id, instance_id, value, lifetime, item_bytes
        )

        def _deliver(owner: int) -> None:
            if owner == self.node.address:
                self._store_request(request)
            else:
                self.node.send(owner, self.PROTOCOL_PUT, payload=request,
                               payload_bytes=item_bytes)

        self.routing.lookup(request["key"], _deliver)
        return instance_id

    def _build_put_request(self, namespace: str, resource_id: Any,
                           instance_id: Optional[int], value: Any,
                           lifetime: float, item_bytes: int) -> Tuple[dict, int]:
        if instance_id is None:
            instance_id = self.next_instance_id()
        request = {
            "namespace": namespace,
            "resource_id": resource_id,
            "instance_id": instance_id,
            "value": value,
            "lifetime": lifetime,
            "publisher": self.node.address,
            "size_bytes": item_bytes,
            "key": hash_key(namespace, resource_id),
        }
        return request, instance_id

    def put_direct(self, target: int, namespace: str, resource_id: Any,
                   instance_id: Optional[int], value: Any,
                   lifetime: float = DEFAULT_LIFETIME_S,
                   item_bytes: int = DEFAULT_ITEM_BYTES,
                   charge_lookup: bool = True) -> int:
        """Publish an item onto a *designated* node instead of the key's owner.

        Used for queries that confine their temporary state to a fixed set of
        computation nodes (the paper's Figure 3 experiments with 1/2/8/16
        computation nodes).  When ``charge_lookup`` is true an overlay lookup
        of the item's key is still performed first, so the latency cost of
        resolving a destination matches the ordinary ``put`` path.
        """
        request, instance_id = self._build_put_request(
            namespace, resource_id, instance_id, value, lifetime, item_bytes
        )

        def _deliver(_owner: int) -> None:
            if target == self.node.address:
                self._store_request(request)
            else:
                self.node.send(target, self.PROTOCOL_PUT, payload=request,
                               payload_bytes=item_bytes)

        if charge_lookup:
            self.routing.lookup(request["key"], _deliver)
        else:
            _deliver(target)
        return instance_id

    def renew(self, namespace: str, resource_id: Any, instance_id: int,
              value: Any, lifetime: float = DEFAULT_LIFETIME_S,
              item_bytes: int = DEFAULT_ITEM_BYTES) -> bool:
        """Refresh an item's lifetime (paper Table 3 ``renew``).

        Implemented as an idempotent re-``put`` of the same triple; returns
        True (best-effort semantics — the DHT gives no stronger guarantee).
        """
        self.put(namespace, resource_id, instance_id, value, lifetime, item_bytes)
        return True

    def _on_put(self, node: Node, message) -> None:
        self._store_request(message.payload)

    def _store_request(self, request: dict) -> None:
        item = StoredItem(
            namespace=request["namespace"],
            resource_id=request["resource_id"],
            instance_id=request["instance_id"],
            value=request["value"],
            key=request["key"],
            expires_at=self.now + request["lifetime"],
            stored_at=self.now,
            publisher=request["publisher"],
            size_bytes=request["size_bytes"],
        )
        # ``newData`` fires only for triples not already live; the indexed
        # membership check replaces a retrieve() that materialised every
        # instance of the resource on each put.
        is_new = not self.storage.has_instance(
            item.namespace, item.resource_id, item.instance_id, self.now
        )
        self.storage.store(item)
        if is_new:
            view = self._view(item)
            for callback in self._new_data_callbacks.get(item.namespace, ()):
                callback(view)

    # ------------------------------------------------------------- put_batch

    def _normalize_put_entries(self, namespace: str, entries: Sequence[PutEntry],
                               lifetime: float, item_bytes: int
                               ) -> Tuple[List[dict], List[int]]:
        """Expand ``(resource_id, value[, instance_id[, item_bytes]])`` entries."""
        requests: List[dict] = []
        instance_ids: List[int] = []
        for entry in entries:
            resource_id, value = entry[0], entry[1]
            instance_id = entry[2] if len(entry) > 2 else None
            entry_bytes = entry[3] if len(entry) > 3 else item_bytes
            request, instance_id = self._build_put_request(
                namespace, resource_id, instance_id, value, lifetime, entry_bytes
            )
            requests.append(request)
            instance_ids.append(instance_id)
        return requests, instance_ids

    def put_batch(self, namespace: str, entries: Sequence[PutEntry],
                  lifetime: float = DEFAULT_LIFETIME_S,
                  item_bytes: int = DEFAULT_ITEM_BYTES) -> List[int]:
        """Publish many items with one routed resolution and one message per owner.

        ``entries`` is a sequence of ``(resource_id, value)`` tuples with
        optional trailing ``instance_id`` and ``item_bytes`` elements.
        Returns the instanceIDs used, aligned with ``entries``.  Items whose
        keys share an owner travel in a single ``prov.put_batch`` message
        whose payload is the sum of the item sizes; every stored item still
        fires its own ``newData`` callback on arrival.  With
        ``batching=False`` this degrades to one scalar :meth:`put` per entry.
        """
        requests, instance_ids = self._normalize_put_entries(
            namespace, entries, lifetime, item_bytes
        )
        if not requests:
            return instance_ids
        if not self.batching:
            for request in requests:
                self._route_put_request(request)
            return instance_ids
        requests_by_key: Dict[int, List[dict]] = {}
        for request in requests:
            requests_by_key.setdefault(request["key"], []).append(request)

        def _deliver(owner: int, keys: List[int]) -> None:
            batch = [request for key in keys for request in requests_by_key[key]]
            self._send_put_requests(owner, batch)

        self.routing.lookup_batch(list(requests_by_key), _deliver)
        return instance_ids

    def put_direct_batch(self, target: int, namespace: str,
                         entries: Sequence[PutEntry],
                         lifetime: float = DEFAULT_LIFETIME_S,
                         item_bytes: int = DEFAULT_ITEM_BYTES,
                         charge_lookup: bool = True) -> List[int]:
        """Batch companion of :meth:`put_direct`: everything goes to ``target``.

        With ``charge_lookup`` the keys are still resolved through the
        overlay first (one batched resolution), so the latency cost matches
        the ordinary ``put_batch`` path; the items themselves are shipped to
        ``target`` in one message per resolution wave.
        """
        requests, instance_ids = self._normalize_put_entries(
            namespace, entries, lifetime, item_bytes
        )
        if not requests:
            return instance_ids
        if not self.batching:
            for request in requests:
                self._route_put_request(request, target=target,
                                        charge_lookup=charge_lookup)
            return instance_ids
        requests_by_key: Dict[int, List[dict]] = {}
        for request in requests:
            requests_by_key.setdefault(request["key"], []).append(request)

        if not charge_lookup:
            self._send_put_requests(target, requests)
            return instance_ids

        def _deliver(_owner: int, keys: List[int]) -> None:
            batch = [request for key in keys for request in requests_by_key[key]]
            self._send_put_requests(target, batch)

        self.routing.lookup_batch(list(requests_by_key), _deliver)
        return instance_ids

    def _route_put_request(self, request: dict, target: Optional[int] = None,
                           charge_lookup: bool = True) -> None:
        """Scalar (seed-pattern) dispatch of one prepared put request."""

        def _deliver(owner: int) -> None:
            destination = owner if target is None else target
            self._send_put_requests(destination, [request], batch_protocol=False)

        if charge_lookup:
            self.routing.lookup(request["key"], _deliver)
        else:
            _deliver(target if target is not None else self.node.address)

    def _send_put_requests(self, destination: int, requests: List[dict],
                           batch_protocol: bool = True) -> None:
        """Store locally or ship a group of put requests to one destination."""
        if destination == self.node.address:
            for request in requests:
                self._store_request(request)
            return
        if not batch_protocol and len(requests) == 1:
            self.node.send(destination, self.PROTOCOL_PUT, payload=requests[0],
                           payload_bytes=requests[0]["size_bytes"])
            return
        total_bytes = sum(request["size_bytes"] for request in requests)
        self.node.send(destination, self.PROTOCOL_PUT_BATCH,
                       payload={"requests": requests},
                       payload_bytes=total_bytes)

    def _on_put_batch(self, node: Node, message) -> None:
        for request in message.payload["requests"]:
            self._store_request(request)

    # ------------------------------------------------------------------- get

    def get(self, namespace: str, resource_id: Any, callback: GetCallback,
            request_bytes: int = 60) -> None:
        """Fetch all items with the given namespace/resourceID (``get``)."""
        key = hash_key(namespace, resource_id)

        def _ask(owner: int) -> None:
            if owner == self.node.address:
                callback(self.get_local(namespace, resource_id))
                return
            request_id = next(self._get_ids)
            self._pending_gets[request_id] = callback
            self.node.send(
                owner,
                self.PROTOCOL_GET,
                payload={
                    "namespace": namespace,
                    "resource_id": resource_id,
                    "origin": self.node.address,
                    "request_id": request_id,
                },
                payload_bytes=request_bytes,
            )

        self.routing.lookup(key, _ask)

    def get_local(self, namespace: str, resource_id: Any) -> List[DHTItem]:
        """Items for ``(namespace, resourceID)`` stored on this node."""
        return [
            self._view(item)
            for item in self.storage.retrieve(namespace, resource_id, self.now)
        ]

    def _on_get(self, node: Node, message) -> None:
        payload = message.payload
        items = self.get_local(payload["namespace"], payload["resource_id"])
        reply_bytes = sum(item.size_bytes for item in items) or 40
        node.send(
            payload["origin"],
            self.PROTOCOL_GET_REPLY,
            payload={"request_id": payload["request_id"], "items": items},
            payload_bytes=reply_bytes,
        )

    def _on_get_reply(self, node: Node, message) -> None:
        payload = message.payload
        callback = self._pending_gets.pop(payload["request_id"], None)
        if callback is not None:
            callback(payload["items"])

    # ------------------------------------------------------------- get_batch

    def get_batch(self, namespace: str, resource_ids: Sequence[Any],
                  callback: BatchGetCallback, request_bytes: int = 60) -> None:
        """Fetch the items of many resourceIDs with one request per owner.

        ``callback(resource_id, items)`` fires once per distinct resourceID.
        IDs owned by the same node share a single ``prov.get_batch`` request
        and a single reply; locally-owned IDs resolve synchronously.  With
        ``batching=False`` this degrades to one scalar :meth:`get` per ID.
        """
        unique = list(dict.fromkeys(resource_ids))
        if not unique:
            return
        if not self.batching:
            for resource_id in unique:
                self.get(namespace, resource_id,
                         lambda items, rid=resource_id: callback(rid, items),
                         request_bytes=request_bytes)
            return
        rids_by_key: Dict[int, List[Any]] = {}
        for resource_id in unique:
            key = hash_key(namespace, resource_id)
            rids_by_key.setdefault(key, []).append(resource_id)

        def _ask(owner: int, keys: List[int]) -> None:
            rids = [rid for key in keys for rid in rids_by_key[key]]
            if owner == self.node.address:
                for rid in rids:
                    callback(rid, self.get_local(namespace, rid))
                return
            request_id = next(self._get_ids)
            self._pending_batch_gets[request_id] = callback
            self.node.send(
                owner,
                self.PROTOCOL_GET_BATCH,
                payload={
                    "namespace": namespace,
                    "resource_ids": rids,
                    "origin": self.node.address,
                    "request_id": request_id,
                },
                payload_bytes=request_bytes + 8 * (len(rids) - 1),
            )

        self.routing.lookup_batch(list(rids_by_key), _ask)

    def _on_get_batch(self, node: Node, message) -> None:
        payload = message.payload
        namespace = payload["namespace"]
        results = [
            {"resource_id": rid, "items": self.get_local(namespace, rid)}
            for rid in payload["resource_ids"]
        ]
        reply_bytes = sum(
            item.size_bytes for result in results for item in result["items"]
        ) or 40
        node.send(
            payload["origin"],
            self.PROTOCOL_GET_BATCH_REPLY,
            payload={"request_id": payload["request_id"], "results": results},
            payload_bytes=reply_bytes,
        )

    def _on_get_batch_reply(self, node: Node, message) -> None:
        payload = message.payload
        callback = self._pending_batch_gets.pop(payload["request_id"], None)
        if callback is None:
            return
        for result in payload["results"]:
            callback(result["resource_id"], result["items"])

    # ------------------------------------------------------------- local ops

    def lscan(self, namespace: str) -> Iterator[DHTItem]:
        """Iterate over the items of ``namespace`` stored locally (``lscan``)."""
        for item in self.storage.scan(namespace, self.now):
            yield self._view(item)

    def on_new_data(self, namespace: str, callback: NewDataCallback) -> None:
        """Register a ``newData`` callback for a namespace (paper Table 3)."""
        self._new_data_callbacks.setdefault(namespace, []).append(callback)

    def off_new_data(self, namespace: str, callback: NewDataCallback) -> bool:
        """Unregister a previously registered ``newData`` callback.

        Queries are soft state: when one finishes or is cancelled, its probes
        must come off so the namespace stops invoking dead dataflows (and so
        long simulations do not accumulate callbacks).  Returns whether the
        callback was found.
        """
        callbacks = self._new_data_callbacks.get(namespace)
        if not callbacks or callback not in callbacks:
            return False
        callbacks.remove(callback)
        if not callbacks:
            del self._new_data_callbacks[namespace]
        return True

    def new_data_callback_count(self, namespace: str) -> int:
        """Number of live ``newData`` callbacks for ``namespace`` (tests/ops)."""
        return len(self._new_data_callbacks.get(namespace, ()))

    def purge_namespace(self, namespace: str) -> int:
        """Drop every locally stored item of ``namespace``; returns the count.

        Used by query teardown to release temporary rehash/filter/partial
        state immediately instead of waiting for soft-state expiry.
        """
        return self.storage.purge_namespace(namespace)

    # -------------------------------------------------------------- multicast

    def multicast(self, namespace: str, resource_id: Any, item: Any,
                  payload_bytes: int = 200) -> int:
        """Deliver ``item`` to every node serving ``namespace`` (``multicast``)."""
        return self.multicast_service.multicast(
            namespace, resource_id, item, payload_bytes=payload_bytes
        )

    def multicast_batch(self, entries: Sequence[Sequence],
                        payload_bytes: int = 200) -> int:
        """Deliver several (namespace, resourceID, item) entries in one flood.

        Each entry may carry an optional fourth element with its own wire
        size; ``payload_bytes`` is the per-entry default.  The single flood
        is charged the sum of the entry sizes.  With ``batching=False`` this
        degrades to one flood per entry at that entry's own size (the last
        multicast id is returned), matching the seed message pattern.
        """
        if not entries:
            raise ValueError("multicast_batch needs at least one entry")
        normalized = [
            (entry[0], entry[1], entry[2],
             entry[3] if len(entry) > 3 else payload_bytes)
            for entry in entries
        ]
        if not self.batching:
            last = 0
            for namespace, resource_id, item, entry_bytes in normalized:
                last = self.multicast_service.multicast(
                    namespace, resource_id, item, payload_bytes=entry_bytes
                )
            return last
        return self.multicast_service.multicast_batch(
            [(namespace, resource_id, item)
             for namespace, resource_id, item, _bytes in normalized],
            payload_bytes=sum(entry_bytes for _ns, _rid, _item, entry_bytes
                              in normalized),
        )

    def on_multicast(self, namespace: str, handler: MulticastHandler) -> None:
        """Register a handler invoked when a multicast for ``namespace`` arrives."""
        self.multicast_service.subscribe(namespace, handler)

    # ----------------------------------------------------------------- admin

    def make_renewal_agent(self, refresh_period: float) -> RenewalAgent:
        """Create (but do not start) a renewal agent bound to this Provider."""
        return RenewalAgent(provider=self, refresh_period=refresh_period)

    def handle_node_failure(self) -> int:
        """Drop all locally stored soft state (called when this node fails)."""
        return self.storage.clear()

    def _view(self, item: StoredItem) -> DHTItem:
        return DHTItem(
            namespace=item.namespace,
            resource_id=item.resource_id,
            instance_id=item.instance_id,
            value=item.value,
            publisher=item.publisher,
            size_bytes=item.size_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Provider(node={self.node.address}, items={len(self.storage)})"
