"""Key derivation for the DHT naming scheme.

Every DHT object is named by a ``(namespace, resourceID, instanceID)``
triple (paper Section 3.2.3).  The namespace and resourceID together
determine the DHT *key* — and hence the responsible node — via a hash
function; the instanceID only disambiguates items that share a key.

Keys live in a flat ``KEY_BITS``-bit integer space.  Each routing layer maps
that integer into its own identifier space: Chord takes it modulo the ring
size, CAN re-hashes it with per-dimension salts to obtain coordinates (the
paper's "d separate hash functions, one for each CAN dimension").
"""

from __future__ import annotations

import hashlib
from typing import Tuple

#: Width of the flat key space shared by all routing layers.
KEY_BITS = 128
#: Size of the key space (exclusive upper bound of keys).
KEY_SPACE = 1 << KEY_BITS


def _digest(data: bytes) -> int:
    """Stable hash of ``data`` truncated to the key space."""
    return int.from_bytes(hashlib.sha1(data).digest()[: KEY_BITS // 8], "big")


def hash_key(namespace: str, resource_id) -> int:
    """Map a ``(namespace, resourceID)`` pair to a DHT key.

    ``resource_id`` may be any value with a stable ``repr``; the query
    processor uses primary-key values and join-key values here.
    """
    data = f"{namespace}\x00{resource_id!r}".encode("utf-8", errors="replace")
    return _digest(data)


def hash_namespace(namespace: str) -> int:
    """Key for namespace-level rendezvous points (e.g. Bloom collectors)."""
    return _digest(f"ns\x00{namespace}".encode("utf-8"))


def key_to_unit_coordinates(key: int, dimensions: int) -> Tuple[float, ...]:
    """Spread a flat key over ``dimensions`` coordinates in ``[0, 1)``.

    Used by CAN: each dimension gets an independent salted hash of the key,
    mirroring the paper's per-dimension hash functions.
    """
    if dimensions <= 0:
        raise ValueError("dimensions must be positive")
    coords = []
    for dim in range(dimensions):
        salted = _digest(f"dim{dim}\x00{key:x}".encode("ascii"))
        coords.append(salted / KEY_SPACE)
    return tuple(coords)


def node_identifier(address: int) -> int:
    """Deterministic DHT identifier for a node address (used by Chord)."""
    return _digest(f"node\x00{address}".encode("ascii"))
