"""Routing layer API (paper Table 1).

The overlay routing layer maps a key to the IP address of the node currently
responsible for it, using only local neighbour state and multi-hop
forwarding.  Its public surface is deliberately tiny:

=====================  =========================================================
``lookup(key) → addr`` asynchronous; invokes a callback with the owner address
``join(landmark)``     attach to (or create) an overlay network
``leave()``            gracefully hand off responsibility and depart
``locationMapChange``  callback fired when the locally-owned key range changes
=====================  =========================================================

Both :class:`repro.dht.can.CanRouting` and :class:`repro.dht.chord.ChordRouting`
implement this interface, which is what lets PIER swap DHTs with "fairly
minimal integration effort" (paper Section 3.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, List, Optional

from repro.net.node import Node

#: Callback type for lookups: receives the owner's node address.
LookupCallback = Callable[[int], None]
#: Callback type for batch lookups: receives (owner address, keys it owns).
#: Invoked once per distinct owner as resolutions arrive, so callers can
#: dispatch each destination's traffic without waiting for stragglers.
BatchLookupCallback = Callable[[int, List[int]], None]
#: Callback type for location-map changes (no arguments; consult the layer).
LocationMapCallback = Callable[[], None]


class BatchLookupState:
    """Origin-side bookkeeping for one in-flight batched lookup."""

    __slots__ = ("callback", "remaining", "on_unresolved")

    def __init__(self, callback: BatchLookupCallback, remaining: int,
                 on_unresolved: Optional[Callable[[List[int]], None]] = None):
        self.callback = callback
        self.remaining = remaining
        self.on_unresolved = on_unresolved


class RoutingLayer(ABC):
    """Abstract overlay routing layer bound to one simulated node.

    Besides the scalar Table 1 interface, the base class owns the generic
    half of **batched lookups**: request bookkeeping, reply handling and the
    forward loop that re-partitions a batch at every hop.  Concrete layers
    supply only the geometry through three hooks — :meth:`_batch_entry`,
    :meth:`_batch_entry_owned` and :meth:`_batch_next_hop` — and register
    their ``PROTOCOL_ROUTE_BATCH`` / ``PROTOCOL_BATCH_LOOKUP_REPLY`` names
    against the inherited handlers.
    """

    #: Name used as a service key on the node and as a protocol prefix.
    SERVICE_NAME = "dht.routing"
    #: Routed-batch protocol names; concrete layers override with their own.
    PROTOCOL_ROUTE_BATCH = "dht.route_batch"
    PROTOCOL_BATCH_LOOKUP_REPLY = "dht.batch_lookup_reply"
    #: Wire size (bytes) charged per batch-entry hop / reply.
    ROUTE_HOP_BYTES = 40
    #: Safety valve: routed batches are dropped after this many overlay hops.
    MAX_ROUTE_HOPS = 128

    def __init__(self, node: Node):
        self.node = node
        self._location_map_listeners: List[LocationMapCallback] = []
        self._pending_batch_lookups: Dict[int, BatchLookupState] = {}
        self.lookup_hops_observed: List[int] = []
        node.services[self.SERVICE_NAME] = self

    # ------------------------------------------------------------- interface

    @abstractmethod
    def lookup(self, key: int, callback: LookupCallback,
               payload_bytes: int = 40) -> None:
        """Resolve ``key`` to the responsible node's address, asynchronously.

        If the key maps to the local node the callback fires synchronously
        (paper footnote 3); otherwise the request is routed hop by hop and
        the owner replies directly to this node.
        """

    # ---------------------------------------------------------- batch lookup

    def lookup_batch(self, keys: Iterable[int], callback: BatchLookupCallback,
                     payload_bytes: int = ROUTE_HOP_BYTES,
                     on_unresolved: Optional[Callable[[List[int]], None]] = None,
                     ) -> None:
        """Resolve many keys at once, grouping resolutions by owner.

        ``callback(owner, keys)`` fires once per distinct owner with every
        key that owner is responsible for; locally-owned keys resolve
        synchronously.  Keys whose greedy paths leave through the same
        neighbour travel in one routed message; each hop re-partitions the
        batch (via :meth:`_batch_next_hop`), so the batch fans out only
        where the routes actually diverge.  The owner of a subset replies
        once for all keys it owns — a ready-made (destination → keys)
        grouping for the caller.  Keys that become unroutable (dead
        neighbours, hop limit) are reported back as *unresolved* so the
        origin's bookkeeping is freed; their items are simply lost, exactly
        like a dropped scalar lookup (soft-state semantics).  Callers that
        must not wait on lost keys (the Provider's failure-aware get lane)
        pass ``on_unresolved`` to be told which keys were dropped.
        """
        unique = list(dict.fromkeys(keys))
        if not unique:
            return
        local: List[int] = []
        entries: List[dict] = []
        for key in unique:
            if self.owns(key):
                local.append(key)
            else:
                entries.append(self._batch_entry(key))
        if local:
            callback(self.address, local)
        if not entries:
            return
        request_id = next(self._lookup_ids)
        self._pending_batch_lookups[request_id] = BatchLookupState(
            callback, len(entries), on_unresolved=on_unresolved
        )
        payload = {
            "entries": entries,
            "origin": self.address,
            "request_id": request_id,
        }
        self._forward_batch(payload, payload_bytes, hops=0)

    # Geometry hooks implemented by each DHT.

    def _batch_entry(self, key: int) -> dict:
        """Build the routed-batch entry for ``key`` (must carry ``"key"``)."""
        raise NotImplementedError

    def _batch_entry_owned(self, entry: dict) -> bool:
        """Whether this node owns the key a batch entry describes."""
        raise NotImplementedError

    def _batch_next_hop(self, entry: dict, exclude: Optional[int]) -> Optional[int]:
        """Best next hop for a batch entry (``None`` when unroutable)."""
        raise NotImplementedError

    # Generic machinery shared by all DHTs.

    def _forward_batch(self, payload: dict, entry_bytes: int, hops: int,
                       exclude: Optional[int] = None) -> None:
        """Partition a routed batch by best next hop and forward each group.

        Entries with no viable next hop (or past the hop limit) are reported
        back to the origin as unresolved rather than silently dropped, so
        the origin's pending state never leaks.
        """
        entries = payload["entries"]
        origin = payload["origin"]
        request_id = payload["request_id"]
        groups: Dict[int, List[dict]] = {}
        dropped: List[int] = []
        if hops >= self.MAX_ROUTE_HOPS:
            dropped = [entry["key"] for entry in entries]
        else:
            for entry in entries:
                next_hop = self._batch_next_hop(entry, exclude)
                if next_hop is None or next_hop == self.address:
                    dropped.append(entry["key"])
                    continue
                groups.setdefault(next_hop, []).append(entry)
        for next_hop, group in groups.items():
            self.node.send(
                next_hop,
                self.PROTOCOL_ROUTE_BATCH,
                payload={
                    "entries": group,
                    "origin": origin,
                    "request_id": request_id,
                },
                payload_bytes=entry_bytes * len(group),
                hops=hops + 1,
            )
        if dropped:
            self._send_batch_reply(origin, request_id, None, dropped, hops)

    def _send_batch_reply(self, origin: int, request_id: int,
                          owner: Optional[int], keys: List[int],
                          hops: int) -> None:
        self.node.send(
            origin,
            self.PROTOCOL_BATCH_LOOKUP_REPLY,
            payload={
                "request_id": request_id,
                "owner": owner,
                "keys": keys,
                "hops": hops,
            },
            payload_bytes=self.ROUTE_HOP_BYTES + 8 * max(0, len(keys) - 1),
        )

    def _on_route_batch(self, node: Node, message) -> None:
        payload = message.payload
        entries = payload["entries"]
        owned: List[int] = []
        rest: List[dict] = []
        for entry in entries:
            if self._batch_entry_owned(entry):
                owned.append(entry["key"])
            else:
                rest.append(entry)
        if owned:
            self._send_batch_reply(payload["origin"], payload["request_id"],
                                   self.address, owned, message.hops)
        if rest:
            entry_bytes = max(1, message.payload_bytes // len(entries))
            self._forward_batch(
                {
                    "entries": rest,
                    "origin": payload["origin"],
                    "request_id": payload["request_id"],
                },
                entry_bytes, message.hops, exclude=message.src,
            )

    def _on_route_batch_bounce(self, node: Node, message) -> None:
        """A batched hop hit a dead node: mark it dead and re-route the batch."""
        self.mark_neighbor_dead(message.dst)
        entries = message.payload["entries"]
        entry_bytes = max(1, message.payload_bytes // max(1, len(entries)))
        self._forward_batch(message.payload, entry_bytes, message.hops,
                            exclude=message.dst)

    def _on_batch_lookup_reply(self, node: Node, message) -> None:
        payload = message.payload
        pending = self._pending_batch_lookups.get(payload["request_id"])
        if pending is None:
            return
        keys = payload["keys"]
        pending.remaining -= len(keys)
        if pending.remaining <= 0:
            del self._pending_batch_lookups[payload["request_id"]]
        owner = payload["owner"]
        if owner is None:
            # Unresolved keys: lost in routing (soft-state semantics) — the
            # bookkeeping is released, and callers that asked to be told
            # (failure-aware gets) learn which keys were dropped.
            if pending.on_unresolved is not None:
                pending.on_unresolved(keys)
            return
        self.lookup_hops_observed.extend([payload.get("hops", 0)] * len(keys))
        pending.callback(owner, keys)

    def mark_neighbor_dead(self, address: int) -> None:
        """Record a detected neighbour failure (no-op by default)."""

    def mark_neighbor_alive(self, address: int) -> None:
        """Clear a previously-detected neighbour failure (no-op by default)."""

    def rebind(self, node: Node) -> "RoutingLayer":
        """Move this routing layer (tables intact) onto another node.

        The real-transport bootstrap builds the full stabilised overlay
        locally over throwaway stand-in nodes — both network builders are
        deterministic functions of the address list — and then rebinds the
        one routing layer that belongs to this process onto its real,
        socket-backed node.  Every protocol handler (and bounce handler) the
        layer registered on the stand-in is re-registered on the new node,
        so the move is invisible to the layer itself.
        """
        old = self.node
        self.node = node
        node.services[self.SERVICE_NAME] = self
        if old is not None and old is not node:
            for protocol, handler in old._handlers.items():
                node.replace_handler(protocol, handler)
            for protocol, handler in old._bounce_handlers.items():
                node.register_bounce_handler(protocol, handler)
        return self

    @abstractmethod
    def owns(self, key: int) -> bool:
        """Whether this node is currently responsible for ``key``."""

    @abstractmethod
    def neighbors(self) -> List[int]:
        """Addresses of overlay neighbours (used for multicast flooding)."""

    @abstractmethod
    def join(self, landmark: Optional[int]) -> None:
        """Join the overlay via ``landmark`` (``None`` starts a new network)."""

    @abstractmethod
    def leave(self) -> None:
        """Gracefully leave, handing owned keys to a neighbour."""

    # ------------------------------------------------------------- callbacks

    def add_location_map_listener(self, callback: LocationMapCallback) -> None:
        """Register a ``locationMapChange`` listener (paper Table 1)."""
        self._location_map_listeners.append(callback)

    def notify_location_map_change(self) -> None:
        """Fire all registered ``locationMapChange`` listeners."""
        for callback in list(self._location_map_listeners):
            callback()

    # ------------------------------------------------------------ utilities

    @property
    def address(self) -> int:
        """Address of the node this routing layer runs on."""
        return self.node.address

    @classmethod
    def of(cls, node: Node) -> "RoutingLayer":
        """Fetch the routing layer service installed on ``node``."""
        return node.services[cls.SERVICE_NAME]
