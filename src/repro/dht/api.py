"""Routing layer API (paper Table 1).

The overlay routing layer maps a key to the IP address of the node currently
responsible for it, using only local neighbour state and multi-hop
forwarding.  Its public surface is deliberately tiny:

=====================  =========================================================
``lookup(key) → addr`` asynchronous; invokes a callback with the owner address
``join(landmark)``     attach to (or create) an overlay network
``leave()``            gracefully hand off responsibility and depart
``locationMapChange``  callback fired when the locally-owned key range changes
=====================  =========================================================

Both :class:`repro.dht.can.CanRouting` and :class:`repro.dht.chord.ChordRouting`
implement this interface, which is what lets PIER swap DHTs with "fairly
minimal integration effort" (paper Section 3.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional

from repro.net.node import Node

#: Callback type for lookups: receives the owner's node address.
LookupCallback = Callable[[int], None]
#: Callback type for location-map changes (no arguments; consult the layer).
LocationMapCallback = Callable[[], None]


class RoutingLayer(ABC):
    """Abstract overlay routing layer bound to one simulated node."""

    #: Name used as a service key on the node and as a protocol prefix.
    SERVICE_NAME = "dht.routing"

    def __init__(self, node: Node):
        self.node = node
        self._location_map_listeners: List[LocationMapCallback] = []
        node.services[self.SERVICE_NAME] = self

    # ------------------------------------------------------------- interface

    @abstractmethod
    def lookup(self, key: int, callback: LookupCallback,
               payload_bytes: int = 40) -> None:
        """Resolve ``key`` to the responsible node's address, asynchronously.

        If the key maps to the local node the callback fires synchronously
        (paper footnote 3); otherwise the request is routed hop by hop and
        the owner replies directly to this node.
        """

    @abstractmethod
    def owns(self, key: int) -> bool:
        """Whether this node is currently responsible for ``key``."""

    @abstractmethod
    def neighbors(self) -> List[int]:
        """Addresses of overlay neighbours (used for multicast flooding)."""

    @abstractmethod
    def join(self, landmark: Optional[int]) -> None:
        """Join the overlay via ``landmark`` (``None`` starts a new network)."""

    @abstractmethod
    def leave(self) -> None:
        """Gracefully leave, handing owned keys to a neighbour."""

    # ------------------------------------------------------------- callbacks

    def add_location_map_listener(self, callback: LocationMapCallback) -> None:
        """Register a ``locationMapChange`` listener (paper Table 1)."""
        self._location_map_listeners.append(callback)

    def notify_location_map_change(self) -> None:
        """Fire all registered ``locationMapChange`` listeners."""
        for callback in list(self._location_map_listeners):
            callback()

    # ------------------------------------------------------------ utilities

    @property
    def address(self) -> int:
        """Address of the node this routing layer runs on."""
        return self.node.address

    @classmethod
    def of(cls, node: Node) -> "RoutingLayer":
        """Fetch the routing layer service installed on ``node``."""
        return node.services[cls.SERVICE_NAME]
