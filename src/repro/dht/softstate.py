"""Soft-state renewal (paper Sections 3.2.3 and 5.6).

PIER achieves relaxed-consistency reliability with the classic Internet
soft-state pattern: every item put into the DHT carries a *lifetime*; if the
publisher does not ``renew`` it before the lifetime elapses, the responsible
node silently drops it.  When a responsible node fails, the items it held are
lost until their publishers renew them — which is exactly the dynamic the
recall experiment (Figure 6) measures for different refresh periods.

:class:`RenewalAgent` is the publisher-side half: it remembers every item the
local node has published and re-``put``s each one every ``refresh_period``
seconds.  The responsible-node half (expiry) lives in
:class:`repro.dht.storage.StorageManager` and the Provider's periodic sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dht.provider import Provider

RecordKey = Tuple[str, Any, int]


@dataclass
class PublishedRecord:
    """Publisher-side bookkeeping for one soft-state item."""

    namespace: str
    resource_id: Any
    instance_id: int
    value: Any
    lifetime: float
    size_bytes: int


@dataclass
class RenewalAgent:
    """Periodically re-publishes every item this node has put into the DHT.

    Parameters
    ----------
    provider:
        The local Provider used to issue the renewals.
    refresh_period:
        Seconds between successive renewals of each item.  The paper sweeps
        30 / 60 / 150 / 225 s in Figure 6.
    """

    provider: "Provider"
    refresh_period: float
    records: Dict[RecordKey, PublishedRecord] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.refresh_period <= 0:
            raise ValueError("refresh period must be positive")
        self._timer = None

    # ------------------------------------------------------------- tracking

    def track(self, namespace: str, resource_id: Any, instance_id: int,
              value: Any, lifetime: float, size_bytes: int) -> None:
        """Start renewing an item this node just published."""
        key = (namespace, resource_id, instance_id)
        self.records[key] = PublishedRecord(
            namespace=namespace,
            resource_id=resource_id,
            instance_id=instance_id,
            value=value,
            lifetime=lifetime,
            size_bytes=size_bytes,
        )

    def untrack(self, namespace: str, resource_id: Any, instance_id: int) -> None:
        """Stop renewing an item (the publisher no longer cares about it)."""
        self.records.pop((namespace, resource_id, instance_id), None)

    def untrack_namespace(self, namespace: str) -> int:
        """Stop renewing every tracked item of one namespace.

        Failure wiring uses this for statistics partials: a failed
        publisher's data died with it, so its ``__pier_stats__`` entry must
        age out rather than be resurrected by the resumed identity's renewal
        loop.  (Data-tuple records are deliberately kept — the paper's
        Figure 6 dynamic is that lost tuples reappear when their publishers
        next renew them.)  Returns the number of records dropped.
        """
        stale = [key for key, record in self.records.items()
                 if record.namespace == namespace]
        for key in stale:
            del self.records[key]
        return len(stale)

    def tracked_count(self, namespace: Optional[str] = None) -> int:
        """Number of items being kept alive (optionally for one namespace)."""
        if namespace is None:
            return len(self.records)
        return sum(1 for record in self.records.values() if record.namespace == namespace)

    # ----------------------------------------------------------------- drive

    def start(self) -> None:
        """Begin the periodic renewal process on the owning node."""
        if self._timer is not None:
            return
        self._timer = self.provider.node.schedule_periodic(
            self.refresh_period, self.renew_all
        )

    def stop(self) -> None:
        """Stop renewing (tracked records are kept for a later restart)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def renew_all(self) -> int:
        """Renew every tracked item once; returns the number renewed.

        Renewals are issued through :meth:`repro.dht.provider.Provider.put_batch`
        grouped by (namespace, lifetime), so a renewal storm costs one message
        per responsible node rather than one per item.
        """
        groups: Dict[Tuple[str, float], list] = {}
        for record in list(self.records.values()):
            groups.setdefault((record.namespace, record.lifetime), []).append(record)
        renewed = 0
        for (namespace, lifetime), records in groups.items():
            entries = [
                (record.resource_id, record.value, record.instance_id,
                 record.size_bytes)
                for record in records
            ]
            self.provider.put_batch(namespace, entries, lifetime=lifetime)
            renewed += len(records)
        return renewed
