"""Content Addressable Network (CAN) routing layer.

CAN (Ratnasamy et al., SIGCOMM 2001) organises nodes over a logical
``d``-dimensional Cartesian unit space partitioned into hyper-rectangular
*zones*.  Each node owns one zone (plus possibly zones adopted from departed
neighbours), keys hash to points, and a key is stored at the node whose zone
contains its point.  Routing greedily forwards a message to the neighbour
whose zone is closest to the target point, giving ``(d/4)·n^{1/d}`` hops on
average — with the paper's choice of ``d = 2`` this is the ``n^{1/2}`` growth
visible in its scalability figures.

Two ways to stand up a CAN are provided:

* the full **join/leave protocol** (zone splitting, item hand-off, neighbour
  updates), used by tests and small experiments;
* :class:`CanNetworkBuilder.build_stabilized`, which constructs the
  partitioning and neighbour tables directly.  The paper's measurements are
  all taken "after the CAN routing stabilizes", so benchmarks use this bulk
  construction to avoid simulating thousands of sequential joins.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import RoutingError
from repro.dht.api import LookupCallback, RoutingLayer
from repro.dht.naming import key_to_unit_coordinates
from repro.net.network import Network
from repro.net.node import Node

#: Default CAN dimensionality used throughout the paper's evaluation.
DEFAULT_DIMENSIONS = 2

#: Wire size (bytes) of a routed lookup / control hop.
ROUTE_HOP_BYTES = 40

#: Safety valve: routed messages are dropped after this many overlay hops.
#: Greedy geometric forwarding can, in rare corner configurations, bounce
#: between zones that are equidistant from the target; the TTL bounds that.
MAX_ROUTE_HOPS = 128


@dataclass(frozen=True)
class Zone:
    """A half-open hyper-rectangle ``[lo, hi)`` in the unit d-cube."""

    lo: Tuple[float, ...]
    hi: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("zone bounds must have equal dimensionality")
        for low, high in zip(self.lo, self.hi):
            if not low < high:
                raise ValueError(f"degenerate zone bounds [{low}, {high})")

    @property
    def dimensions(self) -> int:
        """Number of coordinate dimensions."""
        return len(self.lo)

    @classmethod
    def full_space(cls, dimensions: int) -> "Zone":
        """The entire unit cube."""
        return cls(tuple([0.0] * dimensions), tuple([1.0] * dimensions))

    def contains(self, point: Sequence[float]) -> bool:
        """Whether ``point`` lies inside this zone."""
        lo = self.lo
        hi = self.hi
        return all(
            lo[dim] <= coordinate < hi[dim]
            for dim, coordinate in enumerate(point)
        )

    def volume(self) -> float:
        """Lebesgue volume of the zone."""
        volume = 1.0
        for low, high in zip(self.lo, self.hi):
            volume *= high - low
        return volume

    def extent(self, dim: int) -> float:
        """Side length along dimension ``dim``."""
        return self.hi[dim] - self.lo[dim]

    def longest_dimension(self) -> int:
        """Index of the dimension with the largest extent (ties → lowest)."""
        return max(range(self.dimensions), key=lambda dim: (self.extent(dim), -dim))

    def split(self, dim: Optional[int] = None) -> Tuple["Zone", "Zone"]:
        """Split the zone in half along ``dim`` (default: longest dimension)."""
        if dim is None:
            dim = self.longest_dimension()
        mid = (self.lo[dim] + self.hi[dim]) / 2.0
        lower_hi = list(self.hi)
        lower_hi[dim] = mid
        upper_lo = list(self.lo)
        upper_lo[dim] = mid
        return (
            Zone(self.lo, tuple(lower_hi)),
            Zone(tuple(upper_lo), self.hi),
        )

    def center(self) -> Tuple[float, ...]:
        """Geometric centre of the zone."""
        return tuple((low + high) / 2.0 for low, high in zip(self.lo, self.hi))

    def distance_to_point(self, point: Sequence[float]) -> float:
        """Euclidean distance from ``point`` to the closest point of the zone."""
        total = 0.0
        for low, high, coordinate in zip(self.lo, self.hi, point):
            if coordinate < low:
                delta = low - coordinate
            elif coordinate >= high:
                delta = coordinate - high
            else:
                delta = 0.0
            total += delta * delta
        return total ** 0.5

    def is_neighbor(self, other: "Zone") -> bool:
        """CAN adjacency: abut along exactly one dimension, overlap in the rest."""
        abutting = 0
        for dim in range(self.dimensions):
            a_lo, a_hi = self.lo[dim], self.hi[dim]
            b_lo, b_hi = other.lo[dim], other.hi[dim]
            if a_hi == b_lo or b_hi == a_lo:
                abutting += 1
            elif not (a_lo < b_hi and b_lo < a_hi):
                return False  # disjoint with a gap: cannot be neighbours
            # otherwise strictly overlapping along this dimension
        return abutting >= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ranges = ", ".join(
            f"[{low:.3f},{high:.3f})" for low, high in zip(self.lo, self.hi)
        )
        return f"Zone({ranges})"


class CanRouting(RoutingLayer):
    """CAN routing layer instance bound to one node.

    Parameters
    ----------
    node:
        Simulated host this instance runs on.
    dimensions:
        Dimensionality ``d`` of the coordinate space (paper uses 2).
    seed:
        Seed for the join-point selection of this node.
    """

    PROTOCOL_ROUTE = "can.route"
    PROTOCOL_ROUTE_BATCH = "can.route_batch"
    PROTOCOL_LOOKUP_REPLY = "can.lookup_reply"
    PROTOCOL_BATCH_LOOKUP_REPLY = "can.batch_lookup_reply"
    PROTOCOL_JOIN_REPLY = "can.join_reply"
    PROTOCOL_NEIGHBOR_UPDATE = "can.neighbor_update"
    PROTOCOL_LEAVE_HANDOFF = "can.leave_handoff"

    def __init__(self, node: Node, dimensions: int = DEFAULT_DIMENSIONS, seed: int = 0):
        super().__init__(node)
        if dimensions <= 0:
            raise ValueError("CAN dimensionality must be positive")
        self.dimensions = dimensions
        self.zones: List[Zone] = []
        #: neighbour address -> list of zones that neighbour owns.
        self.neighbor_zones: Dict[int, List[Zone]] = {}
        self._dead_neighbors: set[int] = set()
        self._rng = random.Random((seed << 20) ^ node.address)
        self._pending_lookups: Dict[int, LookupCallback] = {}
        self._lookup_ids = itertools.count(1)
        #: Hooks installed by the Provider for item migration on join/leave.
        self.extract_items: Optional[Callable[[Callable[[int], bool]], list]] = None
        self.install_items: Optional[Callable[[list], None]] = None

        node.register_handler(self.PROTOCOL_ROUTE, self._on_route)
        node.register_handler(self.PROTOCOL_ROUTE_BATCH, self._on_route_batch)
        node.register_handler(self.PROTOCOL_LOOKUP_REPLY, self._on_lookup_reply)
        node.register_handler(self.PROTOCOL_BATCH_LOOKUP_REPLY,
                              self._on_batch_lookup_reply)
        node.register_handler(self.PROTOCOL_JOIN_REPLY, self._on_join_reply)
        node.register_handler(self.PROTOCOL_NEIGHBOR_UPDATE, self._on_neighbor_update)
        node.register_handler(self.PROTOCOL_LEAVE_HANDOFF, self._on_leave_handoff)
        node.register_bounce_handler(self.PROTOCOL_ROUTE, self._on_route_bounce)
        node.register_bounce_handler(self.PROTOCOL_ROUTE_BATCH,
                                     self._on_route_batch_bounce)

    # --------------------------------------------------------------- mapping

    def key_to_point(self, key: int) -> Tuple[float, ...]:
        """Map a flat DHT key to a point in the unit d-cube."""
        return key_to_unit_coordinates(key, self.dimensions)

    def owns_point(self, point: Sequence[float]) -> bool:
        """Whether any of this node's zones contains ``point``."""
        return any(zone.contains(point) for zone in self.zones)

    def owns(self, key: int) -> bool:
        return self.owns_point(self.key_to_point(key))

    def neighbors(self) -> List[int]:
        return [
            address
            for address in self.neighbor_zones
            if address not in self._dead_neighbors
        ]

    def mark_neighbor_dead(self, address: int) -> None:
        """Record a detected neighbour failure; routing avoids it afterwards."""
        if address in self.neighbor_zones:
            self._dead_neighbors.add(address)

    def mark_neighbor_alive(self, address: int) -> None:
        """Clear a previously-detected neighbour failure."""
        self._dead_neighbors.discard(address)

    # ---------------------------------------------------------------- lookup

    def lookup(self, key: int, callback: LookupCallback,
               payload_bytes: int = ROUTE_HOP_BYTES) -> None:
        point = self.key_to_point(key)
        if self.owns_point(point):
            callback(self.address)
            return
        request_id = next(self._lookup_ids)
        self._pending_lookups[request_id] = callback
        payload = {
            "kind": "lookup",
            "point": point,
            "origin": self.address,
            "request_id": request_id,
        }
        self._forward(payload, payload_bytes, hops=0)

    def _forward(self, payload: dict, payload_bytes: int, hops: int,
                 exclude: Optional[int] = None) -> None:
        """Greedy-forward a routed payload one hop closer to its target point."""
        if hops >= MAX_ROUTE_HOPS:
            # Routing loop safety valve; upper layers tolerate the loss
            # (soft-state semantics) and renewal repairs it.
            return
        point = payload["point"]
        next_hop = self._best_next_hop(point, exclude=exclude)
        if next_hop is None:
            return
        self.node.send(
            next_hop,
            self.PROTOCOL_ROUTE,
            payload=payload,
            payload_bytes=payload_bytes,
            hops=hops + 1,
        )

    def _best_next_hop(self, point: Sequence[float],
                       exclude: Optional[int] = None) -> Optional[int]:
        """Neighbour whose zone is geometrically closest to the target point.

        The node the message just arrived from is avoided unless it is the
        only live neighbour, which prevents two-node ping-pong cycles.
        """
        # Squared distances: sqrt is monotone, so the argmin is unchanged and
        # the per-zone cost drops on what profiling shows is the hottest
        # routing loop in large simulations.
        best_address: Optional[int] = None
        best_distance = float("inf")
        fallback_address: Optional[int] = None
        fallback_distance = float("inf")
        dead = self._dead_neighbors
        for address, zones in self.neighbor_zones.items():
            if address in dead:
                continue
            for zone in zones:
                lo = zone.lo
                hi = zone.hi
                distance = 0.0
                for dim, coordinate in enumerate(point):
                    low = lo[dim]
                    if coordinate < low:
                        delta = low - coordinate
                        distance += delta * delta
                    else:
                        high = hi[dim]
                        if coordinate >= high:
                            delta = coordinate - high
                            distance += delta * delta
                if address == exclude:
                    if distance < fallback_distance:
                        fallback_distance = distance
                        fallback_address = address
                    continue
                if distance < best_distance:
                    best_distance = distance
                    best_address = address
        if best_address is not None:
            return best_address
        return fallback_address

    def _on_route(self, node: Node, message) -> None:
        payload = message.payload
        point = payload["point"]
        if not self.owns_point(point):
            self._forward(payload, message.payload_bytes, message.hops,
                          exclude=message.src)
            return
        kind = payload["kind"]
        if kind == "lookup":
            node.send(
                payload["origin"],
                self.PROTOCOL_LOOKUP_REPLY,
                payload={
                    "request_id": payload["request_id"],
                    "owner": self.address,
                    "hops": message.hops,
                },
                payload_bytes=ROUTE_HOP_BYTES,
            )
        elif kind == "join":
            self._handle_join_request(payload)
        else:  # pragma: no cover - defensive
            raise RoutingError(f"unknown routed payload kind {kind!r}")

    def _on_route_bounce(self, node: Node, message) -> None:
        """A forwarded hop hit a dead neighbour: route around it immediately.

        This models per-contact failure detection (a reset / timed-out
        transport connection) as opposed to the slower periodic keep-alives;
        the neighbour is marked dead locally so subsequent traffic avoids it
        until it is reported alive again.
        """
        self.mark_neighbor_dead(message.dst)
        self._forward(message.payload, message.payload_bytes, message.hops,
                      exclude=message.dst)

    def _on_lookup_reply(self, node: Node, message) -> None:
        payload = message.payload
        callback = self._pending_lookups.pop(payload["request_id"], None)
        if callback is None:
            return
        self.lookup_hops_observed.append(payload.get("hops", 0))
        callback(payload["owner"])

    # -------------------------------------------- batch lookup geometry hooks
    # The generic batch machinery (request bookkeeping, per-hop partitioning,
    # owner replies, unresolved-key reporting) lives in RoutingLayer.

    def _batch_entry(self, key: int) -> dict:
        return {"key": key, "point": self.key_to_point(key)}

    def _batch_entry_owned(self, entry: dict) -> bool:
        return self.owns_point(entry["point"])

    def _batch_next_hop(self, entry: dict, exclude: Optional[int]) -> Optional[int]:
        return self._best_next_hop(entry["point"], exclude=exclude)

    # --------------------------------------------------------------- joining

    def create_network(self) -> None:
        """Become the first node of a new CAN, owning the whole space."""
        self.zones = [Zone.full_space(self.dimensions)]
        self.neighbor_zones = {}
        self.notify_location_map_change()

    def join(self, landmark: Optional[int]) -> None:
        if landmark is None:
            self.create_network()
            return
        point = tuple(self._rng.random() for _ in range(self.dimensions))
        payload = {
            "kind": "join",
            "point": point,
            "origin": self.address,
        }
        # The landmark routes the join request toward the chosen point.
        self.node.send(
            landmark,
            self.PROTOCOL_ROUTE,
            payload=payload,
            payload_bytes=ROUTE_HOP_BYTES,
        )

    def _handle_join_request(self, payload: dict) -> None:
        """Split the local primary zone and hand half to the joining node."""
        joiner = payload["origin"]
        point = payload["point"]
        primary_index = next(
            (i for i, zone in enumerate(self.zones) if zone.contains(point)), 0
        )
        primary = self.zones[primary_index]
        kept, given = primary.split()
        # Convention: the joiner receives the half containing its chosen
        # point, the splitter keeps the other half.
        if kept.contains(point):
            kept, given = given, kept
        previous_neighbors = {
            address: list(zones) for address, zones in self.neighbor_zones.items()
        }
        self.zones[primary_index] = kept

        items: list = []
        if self.extract_items is not None:
            items = self.extract_items(lambda key: not self.owns(key))

        reply = {
            "zone": given,
            "neighbor_zones": previous_neighbors,
            "splitter": self.address,
            "splitter_zones": list(self.zones),
            "items": items,
        }
        item_bytes = sum(getattr(item, "size_bytes", 100) for item in items)
        self.node.send(
            joiner,
            self.PROTOCOL_JOIN_REPLY,
            payload=reply,
            payload_bytes=200 + item_bytes,
        )
        # The joiner becomes a neighbour of the splitter.
        self.neighbor_zones[joiner] = [given]
        self._prune_non_adjacent()
        self._broadcast_zone_update()
        self.notify_location_map_change()

    def _on_join_reply(self, node: Node, message) -> None:
        payload = message.payload
        self.zones = [payload["zone"]]
        candidate_map = dict(payload["neighbor_zones"])
        candidate_map[payload["splitter"]] = list(payload["splitter_zones"])
        self.neighbor_zones = {
            address: zones
            for address, zones in candidate_map.items()
            if address != self.address and self._adjacent_to_me(zones)
        }
        if self.install_items is not None and payload["items"]:
            self.install_items(payload["items"])
        self._broadcast_zone_update(extra_recipients=candidate_map.keys())
        self.notify_location_map_change()

    # ---------------------------------------------------------------- leaving

    def leave(self) -> None:
        """Hand all zones and items to the smallest live neighbour."""
        live = [a for a in self.neighbor_zones if a not in self._dead_neighbors]
        if not live:
            self.zones = []
            self.notify_location_map_change()
            return
        heir = min(
            live,
            key=lambda address: sum(z.volume() for z in self.neighbor_zones[address]),
        )
        items: list = []
        if self.extract_items is not None:
            items = self.extract_items(lambda key: True)
        item_bytes = sum(getattr(item, "size_bytes", 100) for item in items)
        self.node.send(
            heir,
            self.PROTOCOL_LEAVE_HANDOFF,
            payload={
                "zones": list(self.zones),
                "items": items,
                "departing": self.address,
                "neighbor_zones": dict(self.neighbor_zones),
            },
            payload_bytes=200 + item_bytes,
        )
        self.zones = []
        self.neighbor_zones = {}
        self.notify_location_map_change()

    def _on_leave_handoff(self, node: Node, message) -> None:
        payload = message.payload
        self.zones.extend(payload["zones"])
        self.neighbor_zones.pop(payload["departing"], None)
        for address, zones in payload["neighbor_zones"].items():
            if address == self.address:
                continue
            if self._adjacent_to_me(zones):
                self.neighbor_zones[address] = zones
        if self.install_items is not None and payload["items"]:
            self.install_items(payload["items"])
        self._broadcast_zone_update(
            extra_recipients=payload["neighbor_zones"].keys()
        )
        self.notify_location_map_change()

    # ----------------------------------------------------- neighbour updates

    def _adjacent_to_me(self, zones: Sequence[Zone]) -> bool:
        return any(
            mine.is_neighbor(theirs) for mine in self.zones for theirs in zones
        )

    def _prune_non_adjacent(self) -> None:
        stale = [
            address
            for address, zones in self.neighbor_zones.items()
            if not self._adjacent_to_me(zones)
        ]
        for address in stale:
            del self.neighbor_zones[address]

    def _broadcast_zone_update(self, extra_recipients=()) -> None:
        recipients = set(self.neighbor_zones) | set(extra_recipients)
        recipients.discard(self.address)
        for address in recipients:
            self.node.send(
                address,
                self.PROTOCOL_NEIGHBOR_UPDATE,
                payload={"address": self.address, "zones": list(self.zones)},
                payload_bytes=100,
            )

    def _on_neighbor_update(self, node: Node, message) -> None:
        payload = message.payload
        address = payload["address"]
        zones = payload["zones"]
        if address == self.address:
            return
        if zones and self._adjacent_to_me(zones):
            self.neighbor_zones[address] = zones
            self._dead_neighbors.discard(address)
        else:
            self.neighbor_zones.pop(address, None)

    # ------------------------------------------------------------ inspection

    def total_volume(self) -> float:
        """Combined volume of the zones owned by this node."""
        return sum(zone.volume() for zone in self.zones)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CanRouting(addr={self.address}, zones={len(self.zones)}, "
            f"neighbors={len(self.neighbor_zones)})"
        )


class CanNetworkBuilder:
    """Construct a stabilised CAN over every node of a network.

    ``build_stabilized`` partitions the unit cube into one zone per node with
    balanced recursive bisection and computes neighbour tables directly, so
    no join-protocol messages are exchanged.  This mirrors the paper's
    methodology of measuring only after the overlay has stabilised.
    """

    def __init__(self, dimensions: int = DEFAULT_DIMENSIONS, seed: int = 0):
        if dimensions <= 0:
            raise ValueError("CAN dimensionality must be positive")
        self.dimensions = dimensions
        self.seed = seed
        self._built_addresses: Optional[List[int]] = None

    # ------------------------------------------------------------- partition

    def partition(self, count: int) -> List[Zone]:
        """Split the unit cube into ``count`` balanced zones."""
        if count <= 0:
            raise ValueError("need at least one node")
        zones: List[Zone] = []

        def _recurse(zone: Zone, remaining: int, depth: int) -> None:
            if remaining == 1:
                zones.append(zone)
                return
            dim = depth % self.dimensions
            lower, upper = zone.split(dim)
            first = (remaining + 1) // 2
            _recurse(lower, first, depth + 1)
            _recurse(upper, remaining - first, depth + 1)

        _recurse(Zone.full_space(self.dimensions), count, 0)
        return zones

    # ------------------------------------------------------------ neighbours

    @staticmethod
    def _overlaps(a_lo: float, a_hi: float, b_lo: float, b_hi: float) -> bool:
        return a_lo < b_hi and b_lo < a_hi

    def neighbor_map(self, zones: List[Zone]) -> Dict[int, List[int]]:
        """Indices of CAN neighbours for each zone (plane-sweep per dimension)."""
        neighbors: Dict[int, set] = {i: set() for i in range(len(zones))}
        for dim in range(self.dimensions):
            hi_at: Dict[float, List[int]] = {}
            lo_at: Dict[float, List[int]] = {}
            for index, zone in enumerate(zones):
                hi_at.setdefault(zone.hi[dim], []).append(index)
                lo_at.setdefault(zone.lo[dim], []).append(index)
            for boundary, left_side in hi_at.items():
                right_side = lo_at.get(boundary, [])
                for i in left_side:
                    zone_i = zones[i]
                    for j in right_side:
                        if i == j:
                            continue
                        zone_j = zones[j]
                        if all(
                            self._overlaps(
                                zone_i.lo[other], zone_i.hi[other],
                                zone_j.lo[other], zone_j.hi[other],
                            )
                            for other in range(self.dimensions)
                            if other != dim
                        ):
                            neighbors[i].add(j)
                            neighbors[j].add(i)
        return {index: sorted(adjacent) for index, adjacent in neighbors.items()}

    # ----------------------------------------------------------------- build

    def build_stabilized(self, network: Network,
                         addresses: Optional[Sequence[int]] = None
                         ) -> Dict[int, CanRouting]:
        """Install a stabilised CAN on ``addresses`` (default: every node)."""
        if addresses is None:
            addresses = list(range(network.num_nodes))
        addresses = list(addresses)
        zones = self.partition(len(addresses))
        adjacency = self.neighbor_map(zones)

        routings: Dict[int, CanRouting] = {}
        for index, address in enumerate(addresses):
            routing = CanRouting(
                network.node(address), dimensions=self.dimensions, seed=self.seed
            )
            routing.zones = [zones[index]]
            routings[address] = routing

        for index, address in enumerate(addresses):
            routing = routings[address]
            routing.neighbor_zones = {
                addresses[j]: [zones[j]] for j in adjacency[index]
            }
        self._built_addresses = addresses
        return routings

    # --------------------------------------------------------- owner lookup

    def locate_index(self, count: int, point: Sequence[float]) -> int:
        """Index (in partition order) of the zone containing ``point``.

        Mirrors the recursion of :meth:`partition` without materialising the
        zones, so the experiment harness can place data directly at its owner
        ("fast load") in O(log n) per key.
        """
        if count <= 0:
            raise ValueError("need at least one node")
        zone = Zone.full_space(self.dimensions)
        offset = 0
        depth = 0
        remaining = count
        while remaining > 1:
            dim = depth % self.dimensions
            lower, upper = zone.split(dim)
            first = (remaining + 1) // 2
            if lower.contains(point):
                zone, remaining = lower, first
            else:
                zone, remaining = upper, remaining - first
                offset += first
            depth += 1
        return offset

    def owner_of_key(self, key: int) -> int:
        """Address of the node owning ``key`` in the last built network."""
        if self._built_addresses is None:
            raise RoutingError("owner_of_key() requires build_stabilized() first")
        point = key_to_unit_coordinates(key, self.dimensions)
        index = self.locate_index(len(self._built_addresses), point)
        return self._built_addresses[index]
