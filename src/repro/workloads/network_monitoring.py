"""Network-monitoring relations from the paper's motivating examples (§2.1).

Three queries motivate PIER in the introduction:

1. find sources running both an open spam gateway and a web robot in the
   same domain (a join of ``spamGateways`` and ``robots``);
2. summarise widespread attacks (``GROUP BY fingerprint HAVING cnt > 10``
   over ``intrusions``);
3. the same summary weighted by per-reporter reputation
   (``count(*) * sum(R.weight)`` over a join with ``reputation``).

The paper would obtain these relations from wrappers around Snort, TBIT,
tcpdump, mail servers and the like; none of those traces are available here,
so this module synthesises relations with the same schemas and with enough
skew (a handful of "hot" fingerprints and overlapping domains) that all three
queries return non-trivial answers.  The substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.catalog import Catalog
from repro.core.tuples import Column, RelationDef, Schema
from repro.exceptions import WorkloadError


@dataclass
class NetworkMonitoringWorkload:
    """Synthetic intrusion-detection relations distributed over nodes.

    Parameters
    ----------
    num_nodes:
        Number of publishing nodes (each stands for one participating server).
    intrusions_per_node:
        Mean number of intrusion fingerprints each node reports.
    num_fingerprints:
        Size of the fingerprint vocabulary; a few of them are "hot" and
        reported by many nodes so the HAVING thresholds are exceeded.
    domain_count:
        Number of distinct client/SMTP domains.
    seed:
        Seed for all randomness.
    """

    num_nodes: int
    intrusions_per_node: int = 6
    num_fingerprints: int = 40
    hot_fingerprints: int = 4
    domain_count: int = 24
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise WorkloadError("workload needs at least one node")
        rng = random.Random(self.seed)
        self._rng = rng

        self.intrusions_schema = Schema([
            Column("report_id", "int"),
            Column("fingerprint", "str", size_bytes=20),
            Column("address", "str", size_bytes=16),
            Column("port", "int"),
            Column("timestamp", "float"),
        ])
        self.reputation_schema = Schema([
            Column("address", "str", size_bytes=16),
            Column("weight", "float"),
        ])
        self.spam_schema = Schema([
            Column("gw_id", "int"),
            Column("smtpGWDomain", "str", size_bytes=24),
            Column("source", "str", size_bytes=16),
        ])
        self.robots_schema = Schema([
            Column("robot_id", "int"),
            Column("clientDomain", "str", size_bytes=24),
            Column("useragent", "str", size_bytes=24),
        ])

        self.intrusions = RelationDef("intrusions", self.intrusions_schema,
                                      primary_key="report_id", tuple_bytes=120)
        self.reputation = RelationDef("reputation", self.reputation_schema,
                                      primary_key="address", tuple_bytes=40)
        self.spam_gateways = RelationDef("spamGateways", self.spam_schema,
                                         primary_key="gw_id",
                                         resource_id_column="smtpGWDomain",
                                         tuple_bytes=80)
        self.robots = RelationDef("robots", self.robots_schema,
                                  primary_key="robot_id",
                                  resource_id_column="clientDomain",
                                  tuple_bytes=80)

        self.intrusions_by_node: Dict[int, List[dict]] = {}
        self.reputation_by_node: Dict[int, List[dict]] = {}
        self.spam_by_node: Dict[int, List[dict]] = {}
        self.robots_by_node: Dict[int, List[dict]] = {}
        self._generate()

    # ------------------------------------------------------------ generation

    def _address_of(self, node: int) -> str:
        return f"10.0.{node // 256}.{node % 256}"

    def _domain_of(self, index: int) -> str:
        return f"domain{index:03d}.example"

    def _generate(self) -> None:
        rng = self._rng
        report_id = 0
        gw_id = 0
        robot_id = 0
        hot = [f"fp-hot-{i}" for i in range(self.hot_fingerprints)]
        cold = [f"fp-{i}" for i in range(self.num_fingerprints - self.hot_fingerprints)]

        for node in range(self.num_nodes):
            address = self._address_of(node)
            # Intrusion reports: hot fingerprints are reported by ~half the
            # nodes, cold ones rarely, giving a heavy-tailed count histogram.
            rows = []
            for _ in range(self.intrusions_per_node):
                if rng.random() < 0.5 and hot:
                    fingerprint = rng.choice(hot)
                else:
                    fingerprint = rng.choice(cold) if cold else rng.choice(hot)
                rows.append({
                    "report_id": report_id,
                    "fingerprint": fingerprint,
                    "address": address,
                    "port": rng.choice([22, 25, 80, 443, 1433, 8080]),
                    "timestamp": rng.uniform(0.0, 3600.0),
                })
                report_id += 1
            self.intrusions_by_node[node] = rows

            # Every reporting address has a reputation weight.
            self.reputation_by_node[node] = [{
                "address": address,
                "weight": round(rng.uniform(0.1, 2.0), 3),
            }]

            # Roughly a third of nodes run a spam gateway, a third a robot;
            # domains overlap so the join has matches.
            domain = self._domain_of(rng.randrange(self.domain_count))
            spam_rows = []
            robot_rows = []
            if rng.random() < 0.35:
                spam_rows.append({
                    "gw_id": gw_id,
                    "smtpGWDomain": domain,
                    "source": address,
                })
                gw_id += 1
            if rng.random() < 0.35:
                robot_rows.append({
                    "robot_id": robot_id,
                    "clientDomain": domain,
                    "useragent": "crawler/1.0",
                })
                robot_id += 1
            self.spam_by_node[node] = spam_rows
            self.robots_by_node[node] = robot_rows

    # ---------------------------------------------------------------- access

    def catalog(self) -> Catalog:
        """Catalog with all four monitoring relations registered."""
        catalog = Catalog()
        for relation in (self.intrusions, self.reputation, self.spam_gateways, self.robots):
            catalog.register(relation)
        return catalog

    def rows_by_node(self, relation_name: str) -> Dict[int, List[dict]]:
        """Per-node rows for the named relation."""
        mapping = {
            "intrusions": self.intrusions_by_node,
            "reputation": self.reputation_by_node,
            "spamGateways": self.spam_by_node,
            "robots": self.robots_by_node,
        }
        try:
            return mapping[relation_name]
        except KeyError:
            raise WorkloadError(f"unknown monitoring relation {relation_name!r}") from None

    # ------------------------------------------------------------ golden data

    def expected_attack_summary(self, threshold: int = 10) -> List[Tuple[str, int]]:
        """Golden answer of the ``GROUP BY fingerprint HAVING cnt > threshold`` query."""
        counts: Dict[str, int] = {}
        for rows in self.intrusions_by_node.values():
            for row in rows:
                counts[row["fingerprint"]] = counts.get(row["fingerprint"], 0) + 1
        return sorted(
            (fingerprint, count)
            for fingerprint, count in counts.items()
            if count > threshold
        )

    def expected_compromised_sources(self) -> List[str]:
        """Golden answer of the spam-gateway ⋈ robots query (distinct sources)."""
        robot_domains = {
            row["clientDomain"]
            for rows in self.robots_by_node.values()
            for row in rows
        }
        sources = {
            row["source"]
            for rows in self.spam_by_node.values()
            for row in rows
            if row["smtpGWDomain"] in robot_domains
        }
        return sorted(sources)
