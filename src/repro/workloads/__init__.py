"""Synthetic workloads: the paper's R ⋈ S benchmark and the network-monitoring
relations that motivate PIER in Section 2.1."""

from repro.workloads.generator import JoinWorkload, WorkloadConfig
from repro.workloads.network_monitoring import NetworkMonitoringWorkload

__all__ = ["WorkloadConfig", "JoinWorkload", "NetworkMonitoringWorkload"]
