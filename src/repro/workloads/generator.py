"""Synthetic R ⋈ S workload (paper Section 5.1).

The paper's evaluation query is::

    SELECT R.pkey, S.pkey, R.pad
    FROM R, S
    WHERE R.num1 = S.pkey
      AND R.num2 > constant1
      AND S.num2 > constant2
      AND f(R.num3, S.num3) > constant3

with the following data characteristics, all reproduced here:

* R has 10× the tuples of S; attribute values are uniformly distributed;
* the constants are chosen to give each selection a configurable selectivity
  (50 % by default);
* 90 % of R tuples have exactly one matching S tuple on ``R.num1 = S.pkey``
  (before selections), the remaining 10 % have none;
* ``R.pad`` exists only to make each result tuple 1 KB on the wire.

Tuples are assigned to publishing nodes uniformly at random (seeded), and the
generator can compute the *golden* result set for any predicate constants,
which the recall metric and the correctness tests compare against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.catalog import Catalog
from repro.core.expressions import (
    And,
    Comparison,
    FunctionCall,
    col,
    lit,
    udf,
)
from repro.core.query import JoinClause, JoinStrategy, QuerySpec, TableRef
from repro.core.tuples import Column, RelationDef, Schema
from repro.exceptions import WorkloadError

#: Value domain width of the ``num2`` / ``num3`` attributes.
VALUE_DOMAIN = 100.0


@dataclass
class WorkloadConfig:
    """Parameters of the synthetic join workload.

    ``s_tuples_per_node`` controls the total data volume (R gets
    ``r_to_s_ratio`` times as many tuples); scale it down for large networks
    to keep simulations tractable, as discussed in DESIGN.md.
    """

    num_nodes: int
    s_tuples_per_node: int = 2
    r_to_s_ratio: int = 10
    r_selectivity: float = 0.5
    s_selectivity: float = 0.5
    f_selectivity: float = 0.5
    match_fraction: float = 0.9
    result_tuple_bytes: int = 1024
    #: R tuples carry the ~1 KB ``pad`` attribute that makes result tuples 1 KB,
    #: so a full (or rehash-projected) R tuple is ~1 KB on the wire; S tuples
    #: are small.  These sizes drive the Figure 4/5 traffic shapes.
    r_tuple_bytes: int = 1040
    s_tuple_bytes: int = 40
    #: When positive, S tuples also carry a ``pad`` column of this wire size
    #: (and the benchmark query projects it), making *both* join inputs fat.
    #: This is the regime where the strategy rewrites genuinely trade off:
    #: rewrites that ship only matching tuples win at low selectivity, while
    #: full rehash/fetch plans win once most tuples match — the optimizer
    #: benchmarks use it to exercise strategy flips.
    s_pad_bytes: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise WorkloadError("workload needs at least one node")
        if self.s_tuples_per_node < 0:
            raise WorkloadError("s_tuples_per_node must be non-negative")
        for name in ("r_selectivity", "s_selectivity", "f_selectivity", "match_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{name} must be in [0, 1], got {value}")
        if self.s_pad_bytes > 0:
            # Result tuples additionally carry S.pad, so their wire size
            # (what the simulator bills the initiator's inbound link for,
            # and what the cost model's result-stream term reads) grows
            # accordingly.
            self.result_tuple_bytes += self.s_pad_bytes

    @property
    def total_s_tuples(self) -> int:
        """Total S cardinality."""
        return self.num_nodes * self.s_tuples_per_node

    @property
    def total_r_tuples(self) -> int:
        """Total R cardinality (10× S by default)."""
        return self.total_s_tuples * self.r_to_s_ratio


class JoinWorkload:
    """Generated R and S tables plus the benchmark query over them."""

    def __init__(self, config: WorkloadConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        self.r_schema = Schema([
            Column("pkey", "int"),
            Column("num1", "int"),
            Column("num2", "float"),
            Column("num3", "float"),
            Column("pad", "str", size_bytes=1000),
        ])
        s_columns = [
            Column("pkey", "int"),
            Column("num2", "float"),
            Column("num3", "float"),
        ]
        if config.s_pad_bytes > 0:
            s_columns.append(Column("pad", "str", size_bytes=config.s_pad_bytes))
        self.s_schema = Schema(s_columns)
        self.r_relation = RelationDef(
            name="R", schema=self.r_schema, primary_key="pkey",
            tuple_bytes=config.r_tuple_bytes,
        )
        self.s_relation = RelationDef(
            name="S", schema=self.s_schema, primary_key="pkey",
            tuple_bytes=config.s_tuple_bytes,
        )
        #: node address -> list of R rows published by that node.
        self.r_by_node: Dict[int, List[dict]] = {a: [] for a in range(config.num_nodes)}
        #: node address -> list of S rows published by that node.
        self.s_by_node: Dict[int, List[dict]] = {a: [] for a in range(config.num_nodes)}
        self._generate()

    # ------------------------------------------------------------ generation

    def _generate(self) -> None:
        config = self.config
        total_s = config.total_s_tuples
        total_r = config.total_r_tuples
        rng = self._rng

        for pkey in range(total_s):
            row = {
                "pkey": pkey,
                "num2": rng.uniform(0.0, VALUE_DOMAIN),
                "num3": rng.uniform(0.0, VALUE_DOMAIN),
            }
            if config.s_pad_bytes > 0:
                row["pad"] = "y" * 8
            node = rng.randrange(config.num_nodes)
            self.s_by_node[node].append(row)

        non_matching_base = total_s  # num1 values in [total_s, 2*total_s) never match
        for pkey in range(total_r):
            if rng.random() < config.match_fraction and total_s > 0:
                num1 = rng.randrange(total_s)
            else:
                num1 = non_matching_base + rng.randrange(max(1, total_s))
            row = {
                "pkey": pkey,
                "num1": num1,
                "num2": rng.uniform(0.0, VALUE_DOMAIN),
                "num3": rng.uniform(0.0, VALUE_DOMAIN),
                "pad": "x" * 8,
            }
            node = rng.randrange(config.num_nodes)
            self.r_by_node[node].append(row)

    # --------------------------------------------------------------- queries

    def predicate_constants(self,
                            s_selectivity: Optional[float] = None) -> Tuple[float, float, float]:
        """Constants (c1, c2, c3) giving the configured selectivities."""
        config = self.config
        s_sel = config.s_selectivity if s_selectivity is None else s_selectivity
        c1 = VALUE_DOMAIN * (1.0 - config.r_selectivity)
        c2 = VALUE_DOMAIN * (1.0 - s_sel)
        c3 = VALUE_DOMAIN * (1.0 - config.f_selectivity)
        return c1, c2, c3

    def catalog(self) -> Catalog:
        """A catalog with R and S registered."""
        catalog = Catalog()
        catalog.register(self.r_relation)
        catalog.register(self.s_relation)
        return catalog

    def make_query(self, strategy: JoinStrategy = JoinStrategy.SYMMETRIC_HASH,
                   s_selectivity: Optional[float] = None,
                   **query_options) -> QuerySpec:
        """The paper's benchmark query as a :class:`QuerySpec`.

        The collection window used by phased strategies (Bloom collectors,
        aggregation owners) defaults to a value that scales with the query
        dissemination time of the configured network size, so Bloom
        collectors do not close before slow nodes' filters arrive.
        """
        c1, c2, c3 = self.predicate_constants(s_selectivity)
        query_options.setdefault(
            "collection_window_s",
            max(4.0, 0.4 * self.config.num_nodes ** 0.5),
        )
        output_columns = ["R.pkey", "S.pkey", "R.pad"]
        if self.config.s_pad_bytes > 0:
            output_columns.append("S.pad")
        return QuerySpec(
            tables=[
                TableRef(self.r_relation, "R"),
                TableRef(self.s_relation, "S"),
            ],
            output_columns=output_columns,
            local_predicates={
                "R": Comparison(">", col("num2"), lit(c1)),
                "S": Comparison(">", col("num2"), lit(c2)),
            },
            join=JoinClause("R", "num1", "S", "pkey"),
            post_join_predicate=Comparison(
                ">", FunctionCall("f", (col("R.num3"), col("S.num3"))), lit(c3)
            ),
            strategy=strategy,
            result_tuple_bytes=self.config.result_tuple_bytes,
            **query_options,
        )

    def sql_text(self, s_selectivity: Optional[float] = None) -> str:
        """The benchmark query as SQL text (for the SQL front-end tests)."""
        c1, c2, c3 = self.predicate_constants(s_selectivity)
        return (
            "SELECT R.pkey, S.pkey, R.pad FROM R, S "
            f"WHERE R.num1 = S.pkey AND R.num2 > {c1} AND S.num2 > {c2} "
            f"AND f(R.num3, S.num3) > {c3}"
        )

    # ----------------------------------------------------------- golden data

    def all_r_rows(self) -> List[Tuple[int, dict]]:
        """All R rows as (publisher, row) pairs."""
        return [(node, row) for node, rows in self.r_by_node.items() for row in rows]

    def all_s_rows(self) -> List[Tuple[int, dict]]:
        """All S rows as (publisher, row) pairs."""
        return [(node, row) for node, rows in self.s_by_node.items() for row in rows]

    def expected_results(self, s_selectivity: Optional[float] = None,
                         live_publishers: Optional[set] = None) -> List[dict]:
        """Golden result rows of the benchmark query.

        ``live_publishers`` restricts both inputs to tuples published by those
        nodes, which is the paper's reachable-snapshot reference set for the
        recall experiment.
        """
        c1, c2, c3 = self.predicate_constants(s_selectivity)
        function = udf("f")
        s_index: Dict[int, List[dict]] = {}
        for publisher, row in self.all_s_rows():
            if live_publishers is not None and publisher not in live_publishers:
                continue
            if row["num2"] > c2:
                s_index.setdefault(row["pkey"], []).append(row)
        results = []
        for publisher, row in self.all_r_rows():
            if live_publishers is not None and publisher not in live_publishers:
                continue
            if row["num2"] <= c1:
                continue
            for s_row in s_index.get(row["num1"], ()):
                if function(row["num3"], s_row["num3"]) > c3:
                    result = {
                        "R.pkey": row["pkey"],
                        "S.pkey": s_row["pkey"],
                        "R.pad": row["pad"],
                    }
                    if self.config.s_pad_bytes > 0:
                        result["S.pad"] = s_row["pad"]
                    results.append(result)
        return results

    def expected_result_count(self, s_selectivity: Optional[float] = None) -> int:
        """Cardinality of the golden result set."""
        return len(self.expected_results(s_selectivity))

    def selected_data_bytes(self, s_selectivity: Optional[float] = None) -> int:
        """Bytes of base data passing the selections (the paper's ``D``)."""
        c1, c2, c3 = self.predicate_constants(s_selectivity)
        r_bytes = sum(
            self.config.r_tuple_bytes
            for _publisher, row in self.all_r_rows() if row["num2"] > c1
        )
        s_bytes = sum(
            self.config.s_tuple_bytes
            for _publisher, row in self.all_s_rows() if row["num2"] > c2
        )
        return r_bytes + s_bytes
