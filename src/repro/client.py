"""PierClient: the session-level query API over a simulated PIER deployment.

The layers below this module speak in mechanisms — :class:`QuerySpec`
multicasts, per-node executors, operator graphs.  ``PierClient`` is the one
composable surface applications use instead:

.. code-block:: python

    client = PierClient(pier, node=0, catalog=workload.catalog())

    cursor = client.sql("SELECT R.pkey, S.pkey, R.pad FROM R, S "
                        "WHERE R.num1 = S.pkey LIMIT 100")
    first = cursor.fetch(10)          # drive the simulation until 10 rows
    for row in cursor:                # ... or stream the rest
        consume(row)
    cursor.cancel()                   # tear the dataflow down everywhere

    print(client.explain("SELECT ..."))          # physical operator graph
    monitor = client.continuous("SELECT ...", period_s=30.0)

Queries are long-lived dataflows with soft-state lifetimes; the cursor owns
the lifecycle: it enforces ``LIMIT`` and per-query timeouts at the
initiator, and on completion/cancel it multicasts a teardown so every
node's probes, subscriptions, timers and temporary fragments are released
(see :meth:`repro.core.executor.QueryExecutor.finish`).

The cursor *drives* the discrete-event simulation on demand (iteration and
``fetch`` advance virtual time until enough rows arrive).  Experiments that
run their own event loop — failure injection, renewal agents — can keep
driving the network themselves and simply read the cursor's views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.core import costmodel
from repro.core.catalog import Catalog
from repro.core.continuous import PeriodicQuery, SlidingWindowPredicate
from repro.core.executor import QueryExecutor, QueryHandle
from repro.core.opgraph import OpGraph, build_opgraph
from repro.core.query import JoinStrategy, QuerySpec
from repro.core.sql.planner import SQLPlanner
from repro.core.stats import StatsRegistry
from repro.core.tuples import RelationDef
from repro.exceptions import PlanError

#: Simulator events advanced per driving step; between steps the cursor
#: checks arrivals against LIMIT / timeout, keeping cancellation prompt.
DRIVE_CHUNK_EVENTS = 256


@dataclass
class CompletenessReport:
    """How much of a query's distributed dataflow actually delivered.

    PIER degrades gracefully under churn — lost fragments and unreachable
    owners lower recall instead of blocking the sink — and this report is
    how a caller tells a complete answer from a degraded one.  Counts are
    aggregated across the whole (simulated) deployment for one query:

    * ``gets_*`` — the query's DHT read requests (Fetch Matches probes,
      semi-join full-tuple fetches): issued vs completed, failed after
      retry exhaustion / unroutable keys, and still pending.
    * ``fragments_lost`` — temporary fragments (rehash tuples, Bloom
      filters, aggregation partials) bounced off dead destinations.
    * ``degraded_ops`` — operators that ran a failure fallback (e.g. a
      Bloom gate rehashing unfiltered because its summary never arrived).
    * ``nodes_with_state`` — executors still holding per-query state at
      snapshot time (after teardown settles this must reach zero).
    """

    query_id: int
    result_rows: int = 0
    gets_issued: int = 0
    gets_completed: int = 0
    gets_failed: int = 0
    gets_pending: int = 0
    fragments_lost: int = 0
    degraded_ops: int = 0
    nodes_with_state: int = 0

    @property
    def complete(self) -> bool:
        """Whether no delivery loss was observed anywhere for this query."""
        return (self.gets_failed == 0 and self.gets_pending == 0
                and self.fragments_lost == 0 and self.degraded_ops == 0)

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "complete" if self.complete else "degraded"
        return (f"query {self.query_id} {status}: rows={self.result_rows} "
                f"gets {self.gets_completed}/{self.gets_issued} completed "
                f"({self.gets_failed} failed, {self.gets_pending} pending), "
                f"fragments lost {self.fragments_lost}, "
                f"degraded ops {self.degraded_ops}")


class ResultCursor:
    """Streaming view of one running query, owned by a :class:`PierClient`.

    Iterating (or calling :meth:`fetch` / :meth:`fetchall`) advances the
    simulation until enough result rows have reached the initiator, the
    event queue drains, the per-query timeout expires, or the query's
    ``LIMIT`` is satisfied — whichever comes first.  ``LIMIT`` and timeout
    both cancel the distributed dataflow once they trigger.

    Driving is always bounded: with no explicit ``timeout_s`` the cursor
    stops at the query's own soft-state lifetime (``temp_lifetime_s``) —
    by then its temporary fragments have expired and no result can
    legitimately arrive — so cursors terminate even on networks whose
    periodic processes (renewal agents, monitors) never go idle.
    :attr:`timed_out` is set when either bound cut the query short.
    """

    def __init__(self, pier, executor: QueryExecutor, query: QuerySpec,
                 handle: QueryHandle, timeout_s: Optional[float] = None):
        self._pier = pier
        self._executor = executor
        self.query = query
        self.handle = handle
        self.timeout_s = timeout_s
        self._limit = query.limit
        #: Whether the rows streamed to the initiator *are* the final rows.
        #: Initiator-side aggregations (join + GROUP BY) stream raw join
        #: rows instead, so LIMIT must apply to the finalised groups and
        #: must not cut the dataflow off mid-stream.
        self._streams_final_rows = not (
            query.is_aggregation and not query.distributed_aggregation
        )
        self._closed = False
        self.cancelled = False
        self.timed_out = False
        self._final_completeness: Optional[CompletenessReport] = None

    # ----------------------------------------------------------------- views

    @property
    def query_id(self) -> int:
        """Identifier of the underlying query."""
        return self.query.query_id

    @property
    def rows(self) -> List[dict]:
        """Result rows received so far (LIMIT applied), in arrival order."""
        rows = self.handle.rows
        if self._limit is not None and self._streams_final_rows:
            rows = rows[:self._limit]
        return rows

    @property
    def result_count(self) -> int:
        """Number of result rows delivered so far (LIMIT applied)."""
        return len(self.rows)

    @property
    def closed(self) -> bool:
        """Whether the query's distributed state has been torn down."""
        return self._closed

    def time_to_kth(self, k: int) -> Optional[float]:
        """Elapsed virtual time from submission to the k-th result row."""
        return self.handle.time_to_kth(k)

    def time_to_last(self) -> Optional[float]:
        """Elapsed virtual time from submission to the last received row."""
        return self.handle.time_to_last()

    def arrival_times(self) -> List[float]:
        """Elapsed arrival times of every received result row."""
        times = self.handle.arrival_times()
        if self._limit is not None and self._streams_final_rows:
            times = times[:self._limit]
        return times

    def explain(self) -> str:
        """The physical operator graph this query runs as."""
        return "\n".join(build_opgraph(self.query).describe())

    def completeness(self) -> CompletenessReport:
        """Delivery accounting for this query across the whole deployment.

        While the query is open this is a live snapshot; the final snapshot
        is captured at teardown time (just before the per-node accounting is
        released) and returned from then on.  ``report.complete`` is the
        "no loss observed anywhere" signal; under churn expect ``False``
        with recall degraded proportionally.
        """
        if self._final_completeness is not None:
            return self._final_completeness
        return self._collect_completeness()

    def _collect_completeness(self) -> CompletenessReport:
        report = CompletenessReport(query_id=self.query_id,
                                    result_rows=self.handle.result_count)
        collect = getattr(self._pier, "collect_completeness", None)
        if collect is not None:  # real cluster: aggregate over the gateway RPC
            return collect(report, build_opgraph(self.query).temp_namespaces())
        providers = getattr(self._pier, "providers", None)
        executors = getattr(self._pier, "executors", None)
        if not providers:  # stubbed deployments: report what the handle knows
            return report
        temp_namespaces = build_opgraph(self.query).temp_namespaces()
        for provider in providers.values():
            scope = provider.scope_report(self.query_id)
            report.gets_issued += scope["issued"]
            report.gets_completed += scope["completed"]
            report.gets_failed += scope["failed"]
            report.gets_pending += scope["pending"]
            for namespace in temp_namespaces:
                report.fragments_lost += (
                    provider.put_bounces_by_namespace.get(namespace, 0)
                )
        for executor in (executors or {}).values():
            state = executor._states.get(self.query_id)
            if state is not None:
                report.nodes_with_state += 1
                report.degraded_ops += state.degraded_ops
        return report

    # -------------------------------------------------------------- lifecycle

    def cancel(self) -> None:
        """Stop result delivery and tear the dataflow down everywhere.

        The teardown is multicast immediately (the initiator's own state is
        released synchronously); remote nodes release theirs as the flood
        reaches them, which happens as the simulation keeps running.
        """
        if self._closed:
            return
        self.cancelled = True
        self._teardown()

    def close(self, drain: bool = True) -> None:
        """Finish the query and release its distributed state.

        With ``drain`` (the default) the simulation is run until idle so the
        teardown flood is fully delivered; pass ``drain=False`` inside
        experiments that keep periodic processes running (their event queues
        never drain).  Closing a query that was neither cancelled nor timed
        out records its observed result cardinality as optimizer feedback —
        drive it to completion first (``fetchall``/iteration) so the count
        is the full result.
        """
        if self._closed:
            return
        self._teardown()
        if drain:
            self._pier.network.run_until_idle()

    def _teardown(self) -> None:
        self._closed = True
        # Snapshot delivery accounting before teardown releases it node by
        # node as the flood arrives.
        self._final_completeness = self._collect_completeness()
        # Observed-cardinality feedback is only trustworthy when the result
        # stream ran to completion; a LIMIT/timeout/cancel truncation would
        # publish an artificially low join selectivity.
        complete = not self.cancelled and not self.timed_out
        self._executor.finish(self.query_id, record_feedback=complete)

    # ---------------------------------------------------------------- driving

    def _deadline(self) -> float:
        """When to stop driving: the explicit timeout, or — failing that —
        the query's own soft-state lifetime: its temporary fragments have
        expired by then, so no result can legitimately arrive later.  This
        bounds cursor driving even on networks whose periodic processes
        (renewal agents, monitors) keep the event queue non-empty forever.
        """
        horizon = self.query.temp_lifetime_s
        if self.timeout_s is not None:
            horizon = min(horizon, self.timeout_s)
        return self.handle.submitted_at + horizon

    def _limit_satisfied(self) -> bool:
        return (self._limit is not None and self._streams_final_rows
                and self.handle.result_count >= self._limit)

    def _advance(self, target_rows: Optional[int] = None) -> None:
        """Run the simulation until enough rows arrived / idle / timeout/LIMIT."""
        network = self._pier.network
        deadline = self._deadline()
        goal = target_rows
        if self._limit is not None and self._streams_final_rows:
            goal = self._limit if goal is None else min(goal, self._limit)
        while True:
            if self._limit_satisfied():
                if not self._closed:
                    self.cancel()
                return
            if goal is not None and self.handle.result_count >= goal:
                return
            next_time = network.simulator.next_event_time()
            if next_time is None:
                return  # idle: everything the query will produce has arrived
            if network.now >= deadline or next_time >= deadline:
                # Explicit timeout, or the query outlived its own soft state.
                if not self._closed:
                    self.timed_out = True
                    self.cancel()
                return
            # Drive up to the next activity timestamp only: run(until=...)
            # would otherwise jump the virtual clock to the deadline when
            # the queue drains, distorting time for everything that follows.
            network.run(until=next_time, max_events=DRIVE_CHUNK_EVENTS)

    def fetch(self, k: int) -> List[dict]:
        """Drive the simulation until ``k`` rows arrived; return the first k.

        Returns fewer rows when the query finishes (or times out / hits its
        LIMIT) before producing ``k``.
        """
        self._advance(target_rows=k)
        return self.rows[:k]

    def fetchall(self, drain: bool = True) -> List[dict]:
        """Run the query to completion and return its final rows.

        Initiator-side aggregations are finalised here (grouping over the
        streamed rows), and ``LIMIT`` applies to the finalised rows.  The
        query's distributed state is torn down before returning; with
        ``drain`` (the default) the simulation then runs until idle so the
        teardown flood is fully delivered — pass ``drain=False`` inside
        experiments with periodic processes, whose event queues never drain.
        """
        self._advance()
        rows = self.handle.final_rows()
        if self._limit is not None:
            rows = rows[:self._limit]
        if not self._closed:
            self._teardown()
        if drain:
            self._pier.network.run_until_idle()
        return rows

    def __iter__(self) -> Iterator[dict]:
        """Stream result rows in arrival order, driving the simulation lazily.

        Initiator-side aggregation queries cannot stream (their groups only
        exist once all inputs arrived), so they run to completion first and
        then yield the final rows.
        """
        query = self.query
        if query.is_aggregation and not query.distributed_aggregation:
            yield from self.fetchall()
            return
        delivered = 0
        while True:
            if delivered < self.handle.result_count:
                rows = self.rows
                while delivered < len(rows):
                    yield rows[delivered]
                    delivered += 1
                if self._limit is not None and delivered >= self._limit:
                    return
                continue
            before = self.handle.result_count
            self._advance(target_rows=before + 1)
            if self.handle.result_count == before:
                return  # no more rows are coming

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (f"ResultCursor(query_id={self.query_id}, rows={self.result_count}, "
                f"{state})")


class PierClient:
    """Session handle bound to one node of a :class:`PierNetwork`.

    Parameters
    ----------
    pier:
        The assembled deployment (anything exposing ``executor(node)`` and
        ``network`` works, so tests can stub it).
    node:
        Address of the node queries are initiated from.
    catalog:
        Catalog used by the SQL planner; relations can also be registered
        later with :meth:`register`.
    default_strategy:
        Join strategy used when a call does not pick one explicitly.
        Defaults to :attr:`JoinStrategy.AUTO`: the cost-based optimizer
        picks the cheapest feasible strategy from statistics published into
        the ``__pier_stats__`` DHT namespace.  Pass a physical strategy (or
        per-call ``strategy=...``) to force one for A/B runs.
    stats:
        Statistics registry used for AUTO planning.  Defaults to the
        initiating node's executor registry, which accumulates publish-time
        partials and runtime feedback; planning refreshes it from the DHT.
    """

    def __init__(self, pier, node: int = 0, catalog: Optional[Catalog] = None,
                 default_strategy: JoinStrategy = JoinStrategy.AUTO,
                 stats: Optional[StatsRegistry] = None):
        self.pier = pier
        self.node = node
        self.catalog = catalog if catalog is not None else Catalog()
        self.default_strategy = default_strategy
        self.planner = SQLPlanner(self.catalog)
        self._stats = stats

    # ----------------------------------------------------------------- wiring

    @property
    def executor(self) -> QueryExecutor:
        """The initiating node's query executor."""
        return self.pier.executor(self.node)

    @property
    def stats(self) -> StatsRegistry:
        """The statistics registry AUTO planning reads and refreshes."""
        if self._stats is not None:
            return self._stats
        registry = getattr(self.executor, "stats", None)
        if registry is None:
            registry = self._stats = StatsRegistry()
        return registry

    def register(self, relation: RelationDef, replace: bool = False) -> RelationDef:
        """Register a relation so SQL can reference it."""
        return self.catalog.register(relation, replace=replace)

    # ------------------------------------------------------------- statistics

    def _refresh_stats(self, names: Sequence[str],
                       signatures: Sequence[str] = (),
                       drive: bool = True) -> None:
        """Refresh relation statistics (and join feedback) from the DHT.

        Issues one ``get`` per relation/signature against the
        ``__pier_stats__`` namespace; with ``drive`` the simulation is
        advanced until the replies arrive (planning happens from user code,
        outside simulator events).  ``drive=False`` fires the fetches and
        returns — the asynchronous pattern continuous queries use inside
        timer callbacks, where the replies refresh the registry for the
        *next* window.
        """
        executor = self.executor
        provider = getattr(executor, "provider", None)
        if provider is None:
            return
        registry = self.stats
        pending = set()
        for name in names:
            token = ("rel", name)
            pending.add(token)
            registry.fetch_relation(
                provider, name,
                lambda _stats, token=token: pending.discard(token),
            )
        for signature in signatures:
            token = ("join", signature)
            pending.add(token)
            registry.fetch_join_observation(
                provider, signature,
                lambda _obs, token=token: pending.discard(token),
            )
        if not drive:
            return
        network = getattr(self.pier, "network", None)
        if network is None:
            return
        # Bounded drive: a handful of lookups resolve in well under this
        # horizon; if a reply is lost (owner failed mid-fetch) planning must
        # not spin a never-idle network (renewal agents, monitors) forever —
        # whatever partials arrived are used, the rest fall back to defaults.
        deadline = network.now + 30.0
        while pending and network.now < deadline:
            next_time = network.simulator.next_event_time()
            if next_time is None:
                return
            network.run(until=min(next_time, deadline),
                        max_events=DRIVE_CHUNK_EVENTS)

    def _attach_planning_context(self, query: QuerySpec,
                                 refresh: bool = True) -> None:
        """Attach statistics, topology and feedback hints to a query spec."""
        names = [table.relation.name for table in query.tables]
        signature = costmodel.query_join_signature(query)
        if refresh:
            self._refresh_stats(names, [signature] if signature else ())
        registry = self.stats
        query.stats_map = {
            table.alias: registry.best_estimate(table.relation.name)
            for table in query.tables
        }
        query.topology = costmodel.TopologyParams.from_pier(self.pier)
        if signature is not None:
            query.join_selectivity_hint = registry.join_selectivity(signature)

    def _resolve_auto(self, query: QuerySpec, refresh: bool = True) -> None:
        """Resolve ``strategy=AUTO`` on ``query`` from (refreshed) statistics."""
        if query.strategy is not JoinStrategy.AUTO or not query.is_join:
            return
        self._attach_planning_context(query, refresh=refresh)
        costmodel.resolve_auto_strategy(query)

    # ---------------------------------------------------------------- queries

    def plan(self, sql: str, strategy: Optional[JoinStrategy] = None,
             resolve_auto: bool = True, **query_options) -> QuerySpec:
        """Plan SQL text into a :class:`QuerySpec` without running it.

        With the default ``strategy=AUTO``, planning refreshes relation
        statistics from the DHT and resolves the spec to the cheapest
        feasible physical strategy (``resolve_auto=False`` leaves the
        template unresolved — continuous queries re-optimize per window).
        """
        query = self.planner.plan_sql(
            sql, strategy=strategy or self.default_strategy, **query_options
        )
        if resolve_auto:
            self._resolve_auto(query)
        return query

    def sql(self, sql: str, strategy: Optional[JoinStrategy] = None,
            limit: Optional[int] = None, timeout_s: Optional[float] = None,
            **query_options) -> ResultCursor:
        """Submit a SQL query; returns its streaming :class:`ResultCursor`.

        ``limit`` overrides the statement's ``LIMIT`` clause;
        ``query_options`` are forwarded to the :class:`QuerySpec`
        (``collection_window_s``, ``result_tuple_bytes``, ...).
        """
        query = self.plan(sql, strategy=strategy, **query_options)
        if limit is not None:
            if limit <= 0:
                raise PlanError(f"LIMIT must be positive, got {limit}")
            query.limit = limit
        return self.query(query, timeout_s=timeout_s)

    def query(self, query: QuerySpec, timeout_s: Optional[float] = None) -> ResultCursor:
        """Submit an already-built :class:`QuerySpec` from this session's node.

        ``strategy=AUTO`` specs are cost-resolved here (statistics refreshed
        from the DHT first) so the multicast disseminates a concrete
        physical plan.
        """
        if query.strategy is JoinStrategy.AUTO:
            self._resolve_auto(query)
        handle = self.executor.submit(query)
        return ResultCursor(self.pier, self.executor, query, handle,
                            timeout_s=timeout_s)

    # ----------------------------------------------------------------- explain

    def opgraph(self, sql: str, strategy: Optional[JoinStrategy] = None,
                **query_options) -> OpGraph:
        """The physical operator graph the SQL would run as."""
        return build_opgraph(self.plan(sql, strategy=strategy, **query_options))

    def explain(self, sql: str, strategy: Optional[JoinStrategy] = None,
                **query_options) -> str:
        """Render the physical operator graph for a SQL query (EXPLAIN).

        Each operator is annotated with the cost model's estimated
        rows/bytes/DHT hops, followed by the plan's estimated completion
        time; when the optimizer resolved ``strategy=AUTO``, the losing
        candidates' totals are listed under the plan so forced-strategy A/B
        runs can be judged against the model.
        """
        query = self.plan(sql, strategy=strategy, **query_options)
        if query.stats_map is None:
            # Forced strategies skip AUTO resolution; attach context (from
            # the local registry, refreshed from the DHT) so the EXPLAIN
            # still carries estimates.
            self._attach_planning_context(query)
        graph = build_opgraph(query)
        cost = costmodel.cost_graph(
            graph, stats_map=query.stats_map, topology=query.topology,
            observed_join_selectivity=query.join_selectivity_hint,
        )
        lines = graph.describe(cost=cost)
        report = query.optimizer_report
        if report is not None:
            lines.extend(report.describe())
        return "\n".join(lines)

    # -------------------------------------------------------------- continuous

    def continuous(self, sql: str, period_s: float,
                   strategy: Optional[JoinStrategy] = None,
                   window_column: Optional[str] = None,
                   window_s: Optional[float] = None,
                   on_window=None, **query_options) -> PeriodicQuery:
        """Set up a continuous (periodic, optionally windowed) query.

        Returns the :class:`PeriodicQuery` — call ``start()`` to begin and
        ``stop()`` to end it.  Each window is an ordinary PIER query; the
        previous window's distributed state is torn down when the next one
        is submitted, so long-running monitors stay bounded.

        ``window_column``/``window_s`` restrict each execution to rows whose
        timestamp column falls inside the trailing window.

        With ``strategy=AUTO`` (the default) the template stays unresolved
        and every window is re-optimized against the statistics registry as
        it stands at submission time; each window also fires an
        asynchronous statistics refresh from the DHT, so a drifting
        workload can flip the chosen strategy between windows.
        """
        template = self.plan(sql, strategy=strategy, resolve_auto=False,
                             **query_options)
        window = None
        if window_column is not None:
            if window_s is None:
                raise ValueError("window_column requires window_s")
            window = SlidingWindowPredicate(window_column, window_s)
        prepare = self._prepare_continuous_window if (
            template.strategy is JoinStrategy.AUTO and template.is_join
        ) else None
        return PeriodicQuery(
            self.executor, template, period_s,
            window=window, on_window=on_window, teardown_previous=True,
            prepare_window=prepare,
        )

    def _prepare_continuous_window(self, query: QuerySpec) -> None:
        """Re-optimize one continuous-query window before submission.

        Runs inside a simulator timer event, so the DHT statistics refresh
        is asynchronous: this window plans from the registry as refreshed by
        previous windows' fetches (and the feedback recorded at their
        teardown); its own fetches serve the next window.
        """
        self._resolve_auto(query, refresh=False)
        names = [table.relation.name for table in query.tables]
        signature = costmodel.query_join_signature(query)
        self._refresh_stats(names, [signature] if signature else (),
                            drive=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PierClient(node={self.node}, catalog={self.catalog!r})"
